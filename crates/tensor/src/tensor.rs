//! The core [`Tensor`] type and backward pass.

use std::cell::{Ref, RefCell};
use std::collections::HashSet;
use std::fmt;
use std::rc::Rc;
use std::sync::atomic::{AtomicUsize, Ordering};

static NEXT_ID: AtomicUsize = AtomicUsize::new(0);

/// Errors from tensor construction and shape checks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Data length does not match the product of the shape dimensions.
    ShapeDataMismatch { shape: Vec<usize>, data_len: usize },
    /// Two operands had incompatible shapes for the attempted operation.
    ShapeMismatch {
        left: Vec<usize>,
        right: Vec<usize>,
        op: &'static str,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeDataMismatch { shape, data_len } => {
                write!(
                    f,
                    "shape {shape:?} needs {} elements, got {data_len}",
                    shape.iter().product::<usize>()
                )
            }
            TensorError::ShapeMismatch { left, right, op } => {
                write!(f, "shape mismatch for {op}: {left:?} vs {right:?}")
            }
        }
    }
}

impl std::error::Error for TensorError {}

type BackwardFn = Box<dyn Fn(&[f32], &[Tensor])>;

pub(crate) struct Inner {
    pub(crate) id: usize,
    pub(crate) shape: Vec<usize>,
    pub(crate) data: RefCell<Vec<f32>>,
    pub(crate) grad: RefCell<Option<Vec<f32>>>,
    pub(crate) requires_grad: bool,
    pub(crate) parents: Vec<Tensor>,
    pub(crate) backward_fn: Option<BackwardFn>,
}

/// A reference-counted dense `f32` tensor participating in an autograd
/// graph. Cloning is cheap (pointer copy) and clones share storage.
#[derive(Clone)]
pub struct Tensor(pub(crate) Rc<Inner>);

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tensor")
            .field("id", &self.0.id)
            .field("shape", &self.0.shape)
            .field("requires_grad", &self.0.requires_grad)
            .finish()
    }
}

impl Tensor {
    /// Builds a tensor from a shape and flat row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the shape's element count; use
    /// [`Tensor::try_from_vec`] for a fallible version.
    pub fn from_vec(shape: Vec<usize>, data: Vec<f32>) -> Tensor {
        Tensor::try_from_vec(shape, data).expect("shape/data mismatch")
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] when sizes disagree.
    pub fn try_from_vec(shape: Vec<usize>, data: Vec<f32>) -> Result<Tensor, TensorError> {
        let numel: usize = shape.iter().product();
        if numel != data.len() {
            return Err(TensorError::ShapeDataMismatch {
                shape,
                data_len: data.len(),
            });
        }
        Ok(Tensor::leaf(shape, data, false))
    }

    /// Scalar (0-d, stored as shape `[1]`) tensor.
    pub fn scalar(value: f32) -> Tensor {
        Tensor::leaf(vec![1], vec![value], false)
    }

    /// All-zeros tensor.
    pub fn zeros(shape: Vec<usize>) -> Tensor {
        let numel = shape.iter().product();
        Tensor::leaf(shape, vec![0.0; numel], false)
    }

    /// All-ones tensor.
    pub fn ones(shape: Vec<usize>) -> Tensor {
        let numel = shape.iter().product();
        Tensor::leaf(shape, vec![1.0; numel], false)
    }

    /// Standard-normal random tensor from the given RNG.
    pub fn randn<R: rand::Rng + ?Sized>(shape: Vec<usize>, rng: &mut R) -> Tensor {
        let numel: usize = shape.iter().product();
        // Box–Muller transform; avoids needing rand_distr.
        let mut data = Vec::with_capacity(numel);
        while data.len() < numel {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let mag = (-2.0 * u1.ln()).sqrt();
            data.push(mag * (2.0 * std::f32::consts::PI * u2).cos());
            if data.len() < numel {
                data.push(mag * (2.0 * std::f32::consts::PI * u2).sin());
            }
        }
        Tensor::leaf(shape, data, false)
    }

    pub(crate) fn leaf(shape: Vec<usize>, data: Vec<f32>, requires_grad: bool) -> Tensor {
        Tensor(Rc::new(Inner {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            shape,
            data: RefCell::new(data),
            grad: RefCell::new(None),
            requires_grad,
            parents: Vec::new(),
            backward_fn: None,
        }))
    }

    pub(crate) fn from_op(
        shape: Vec<usize>,
        data: Vec<f32>,
        parents: Vec<Tensor>,
        backward_fn: BackwardFn,
    ) -> Tensor {
        let requires_grad = parents.iter().any(|p| p.0.requires_grad);
        Tensor(Rc::new(Inner {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            shape,
            data: RefCell::new(data),
            grad: RefCell::new(None),
            requires_grad,
            parents: if requires_grad { parents } else { Vec::new() },
            backward_fn: if requires_grad {
                Some(backward_fn)
            } else {
                None
            },
        }))
    }

    /// Marks this (leaf) tensor as a differentiable parameter and returns it.
    ///
    /// # Panics
    ///
    /// Panics when called on a non-leaf tensor — interior nodes derive
    /// their `requires_grad` from their parents.
    pub fn requires_grad(self) -> Tensor {
        assert!(
            self.0.parents.is_empty() && self.0.backward_fn.is_none(),
            "requires_grad() must be called on leaf tensors"
        );
        Tensor(Rc::new(Inner {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            shape: self.0.shape.clone(),
            data: RefCell::new(self.0.data.borrow().clone()),
            grad: RefCell::new(None),
            requires_grad: true,
            parents: Vec::new(),
            backward_fn: None,
        }))
    }

    /// The tensor's shape.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.0.shape
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.0.shape.iter().product()
    }

    /// `true` for an empty tensor (any zero dimension).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether gradients flow into this tensor.
    #[inline]
    pub fn is_differentiable(&self) -> bool {
        self.0.requires_grad
    }

    /// Borrow the underlying data.
    pub fn data(&self) -> Ref<'_, Vec<f32>> {
        self.0.data.borrow()
    }

    /// Copy out the underlying data.
    pub fn to_vec(&self) -> Vec<f32> {
        self.0.data.borrow().clone()
    }

    /// Extracts the single element of a one-element tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor has more than one element.
    pub fn item(&self) -> f32 {
        let data = self.0.data.borrow();
        assert_eq!(data.len(), 1, "item() requires a single-element tensor");
        data[0]
    }

    /// Copy of the accumulated gradient, if any.
    pub fn grad_vec(&self) -> Option<Vec<f32>> {
        self.0.grad.borrow().clone()
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&self) {
        *self.0.grad.borrow_mut() = None;
    }

    /// In-place SGD-style update: `data -= step` elementwise.
    /// Used by optimizers; does not record autograd history.
    ///
    /// # Panics
    ///
    /// Panics when `step.len()` differs from the tensor size.
    pub fn apply_step(&self, step: &[f32]) {
        let mut data = self.0.data.borrow_mut();
        assert_eq!(data.len(), step.len(), "step length mismatch");
        for (d, s) in data.iter_mut().zip(step) {
            *d -= s;
        }
    }

    /// Replaces the tensor's contents (e.g. loading broadcast parameters
    /// from the parameter server). No autograd history is recorded.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn set_data(&self, new_data: &[f32]) {
        let mut data = self.0.data.borrow_mut();
        assert_eq!(data.len(), new_data.len(), "set_data length mismatch");
        data.copy_from_slice(new_data);
    }

    pub(crate) fn accumulate_grad(&self, delta: &[f32]) {
        if !self.0.requires_grad {
            return;
        }
        let mut slot = self.0.grad.borrow_mut();
        match slot.as_mut() {
            Some(g) => {
                for (gi, di) in g.iter_mut().zip(delta) {
                    *gi += di;
                }
            }
            None => *slot = Some(delta.to_vec()),
        }
    }

    /// Runs reverse-mode differentiation from this (scalar) tensor,
    /// accumulating gradients into every reachable tensor with
    /// `requires_grad`.
    ///
    /// # Panics
    ///
    /// Panics if called on a tensor with more than one element.
    pub fn backward(&self) {
        assert_eq!(self.len(), 1, "backward() requires a scalar output");
        // Topological order via iterative post-order DFS.
        let mut topo: Vec<Tensor> = Vec::new();
        let mut visited: HashSet<usize> = HashSet::new();
        let mut stack: Vec<(Tensor, bool)> = vec![(self.clone(), false)];
        while let Some((node, processed)) = stack.pop() {
            if processed {
                topo.push(node);
                continue;
            }
            if !visited.insert(node.0.id) {
                continue;
            }
            stack.push((node.clone(), true));
            for p in &node.0.parents {
                if !visited.contains(&p.0.id) {
                    stack.push((p.clone(), false));
                }
            }
        }

        // Seed d(self)/d(self) = 1.
        self.accumulate_grad(&[1.0]);

        for node in topo.iter().rev() {
            let Some(backward_fn) = &node.0.backward_fn else {
                continue;
            };
            let grad = node.0.grad.borrow();
            let Some(grad) = grad.as_ref() else {
                continue; // Node unreachable from the output's gradient flow.
            };
            backward_fn(grad, &node.0.parents);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction() {
        let t = Tensor::from_vec(vec![2, 3], vec![1.0; 6]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.len(), 6);
        assert!(!t.is_differentiable());
        assert!(Tensor::try_from_vec(vec![2, 2], vec![0.0; 3]).is_err());
    }

    #[test]
    fn scalar_and_item() {
        assert_eq!(Tensor::scalar(4.5).item(), 4.5);
    }

    #[test]
    fn randn_is_deterministic_and_roughly_normal() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = Tensor::randn(vec![10_000], &mut rng);
        let data = t.to_vec();
        let mean: f32 = data.iter().sum::<f32>() / data.len() as f32;
        let var: f32 = data.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / data.len() as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");

        let mut rng2 = StdRng::seed_from_u64(1);
        let t2 = Tensor::randn(vec![10_000], &mut rng2);
        assert_eq!(t.to_vec(), t2.to_vec());
    }

    #[test]
    fn apply_step_and_set_data() {
        let t = Tensor::from_vec(vec![3], vec![1.0, 2.0, 3.0]);
        t.apply_step(&[0.5, 0.5, 0.5]);
        assert_eq!(t.to_vec(), vec![0.5, 1.5, 2.5]);
        t.set_data(&[9.0, 9.0, 9.0]);
        assert_eq!(t.to_vec(), vec![9.0; 3]);
    }

    #[test]
    fn grad_accumulates_across_uses() {
        let x = Tensor::from_vec(vec![2], vec![3.0, 4.0]).requires_grad();
        // y = sum(x) + sum(x): gradient should be 2 for each coordinate.
        let y = x.sum().add(&x.sum());
        y.backward();
        assert_eq!(x.grad_vec().unwrap(), vec![2.0, 2.0]);
        x.zero_grad();
        assert!(x.grad_vec().is_none());
    }
}
