//! A minimal dense `f32` tensor library with reverse-mode automatic
//! differentiation.
//!
//! The ByzShield paper trains ResNet-18 on CIFAR-10 with PyTorch; this
//! reproduction cannot depend on deep-learning crates, so the training
//! substrate is built from scratch. The design is a classic tape-free
//! reference-counted autograd graph (à la micrograd): every [`Tensor`]
//! holds its value, an optional gradient accumulator, its parents, and a
//! backward closure; [`Tensor::backward`] topologically sorts the graph
//! and propagates.
//!
//! Supported operations cover what the NN layer crate needs: elementwise
//! arithmetic, matrix multiplication, broadcast bias addition, ReLU/Tanh,
//! reductions, `log_softmax` + negative log-likelihood, 2-D convolution
//! and max-pooling (via im2col in the `byz-nn` crate), reshape, and
//! concatenation.
//!
//! # Example
//!
//! ```
//! use byz_tensor::Tensor;
//!
//! let x = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]).requires_grad();
//! let y = x.mul(&x).sum();          // y = Σ x²
//! y.backward();
//! assert_eq!(x.grad_vec().unwrap(), vec![2.0, 4.0, 6.0, 8.0]); // dy/dx = 2x
//! ```

mod ops;
mod spatial;
mod tensor;

pub use spatial::conv_output_size;
pub use tensor::{Tensor, TensorError};

/// Numerical gradient check helper used by the test suites: compares the
/// autograd gradient of `f` at `x` against central finite differences.
///
/// Returns the maximum absolute deviation across all coordinates.
pub fn gradient_check<F>(x: &[f32], shape: &[usize], f: F, eps: f32) -> f32
where
    F: Fn(&Tensor) -> Tensor,
{
    // Autograd gradient.
    let t = Tensor::from_vec(shape.to_vec(), x.to_vec()).requires_grad();
    let out = f(&t);
    assert_eq!(out.len(), 1, "gradient_check needs a scalar output");
    out.backward();
    let auto = t.grad_vec().expect("input requires grad");

    // Finite differences.
    let mut worst = 0.0f32;
    for i in 0..x.len() {
        let mut plus = x.to_vec();
        plus[i] += eps;
        let mut minus = x.to_vec();
        minus[i] -= eps;
        let fp = f(&Tensor::from_vec(shape.to_vec(), plus)).item();
        let fm = f(&Tensor::from_vec(shape.to_vec(), minus)).item();
        let numeric = (fp - fm) / (2.0 * eps);
        worst = worst.max((auto[i] - numeric).abs());
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gradient_check_quadratic() {
        let x = [0.5f32, -1.0, 2.0];
        let err = gradient_check(&x, &[3], |t| t.mul(t).sum(), 1e-3);
        assert!(err < 1e-2, "max deviation {err}");
    }
}
