//! Differentiable operations on [`Tensor`].
//!
//! Matrix products route through the shared [`byz_kernel`] compute layer
//! (cache-blocked, pooled-thread matmul); backward passes for the matmul
//! use the fused transpose variants so no transposed operand is ever
//! materialized, and elementwise backward closures write into pooled
//! scratch buffers instead of allocating per call.

use byz_kernel::{matmul_transa, matmul_transb, with_scratch};

use crate::Tensor;

impl Tensor {
    fn assert_same_shape(&self, other: &Tensor, op: &'static str) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "shape mismatch for {op}: {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
    }

    /// Elementwise addition.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.assert_same_shape(other, "add");
        let data: Vec<f32> = self
            .data()
            .iter()
            .zip(other.data().iter())
            .map(|(a, b)| a + b)
            .collect();
        Tensor::from_op(
            self.shape().to_vec(),
            data,
            vec![self.clone(), other.clone()],
            Box::new(|grad, parents| {
                parents[0].accumulate_grad(grad);
                parents[1].accumulate_grad(grad);
            }),
        )
    }

    /// Elementwise subtraction.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.assert_same_shape(other, "sub");
        let data: Vec<f32> = self
            .data()
            .iter()
            .zip(other.data().iter())
            .map(|(a, b)| a - b)
            .collect();
        Tensor::from_op(
            self.shape().to_vec(),
            data,
            vec![self.clone(), other.clone()],
            Box::new(|grad, parents| {
                parents[0].accumulate_grad(grad);
                with_scratch(grad.len(), |neg| {
                    for (o, g) in neg.iter_mut().zip(grad) {
                        *o = -g;
                    }
                    parents[1].accumulate_grad(neg);
                });
            }),
        )
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.assert_same_shape(other, "mul");
        let data: Vec<f32> = self
            .data()
            .iter()
            .zip(other.data().iter())
            .map(|(a, b)| a * b)
            .collect();
        Tensor::from_op(
            self.shape().to_vec(),
            data,
            vec![self.clone(), other.clone()],
            Box::new(|grad, parents| {
                // Borrow the parent buffers instead of cloning them; the
                // data and grad cells are distinct, so the borrows may
                // stay live while gradients accumulate.
                with_scratch(2 * grad.len(), |scratch| {
                    let (ga, gb) = scratch.split_at_mut(grad.len());
                    {
                        let a = parents[0].data();
                        let b = parents[1].data();
                        for i in 0..grad.len() {
                            ga[i] = grad[i] * b[i];
                            gb[i] = grad[i] * a[i];
                        }
                    }
                    parents[0].accumulate_grad(ga);
                    parents[1].accumulate_grad(gb);
                });
            }),
        )
    }

    /// Scalar multiple.
    pub fn scale(&self, s: f32) -> Tensor {
        let data: Vec<f32> = self.data().iter().map(|a| a * s).collect();
        Tensor::from_op(
            self.shape().to_vec(),
            data,
            vec![self.clone()],
            Box::new(move |grad, parents| {
                with_scratch(grad.len(), |g| {
                    for (o, gv) in g.iter_mut().zip(grad) {
                        *o = gv * s;
                    }
                    parents[0].accumulate_grad(g);
                });
            }),
        )
    }

    /// Elementwise negation.
    pub fn neg(&self) -> Tensor {
        self.scale(-1.0)
    }

    /// Matrix product of two 2-D tensors `[m, k] × [k, n] → [m, n]`.
    ///
    /// # Panics
    ///
    /// Panics unless both tensors are 2-D with matching inner dimension.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape().len(), 2, "matmul lhs must be 2-D");
        assert_eq!(other.shape().len(), 2, "matmul rhs must be 2-D");
        let (m, k) = (self.shape()[0], self.shape()[1]);
        let (k2, n) = (other.shape()[0], other.shape()[1]);
        assert_eq!(k, k2, "matmul inner dimensions differ: {k} vs {k2}");

        let a = self.data();
        let b = other.data();
        let mut out = vec![0.0f32; m * n];
        byz_kernel::matmul(&a, &b, &mut out, m, k, n);
        drop(a);
        drop(b);

        Tensor::from_op(
            vec![m, n],
            out,
            vec![self.clone(), other.clone()],
            Box::new(move |grad, parents| {
                // Fused-transpose kernels: dA = G · Bᵀ and dB = Aᵀ · G
                // without materializing Bᵀ or Aᵀ.
                with_scratch(m * k + k * n, |scratch| {
                    let (ga, gb) = scratch.split_at_mut(m * k);
                    {
                        let a = parents[0].data();
                        let b = parents[1].data();
                        matmul_transb(grad, &b, ga, m, n, k);
                        matmul_transa(&a, grad, gb, m, k, n);
                    }
                    parents[0].accumulate_grad(ga);
                    parents[1].accumulate_grad(gb);
                });
            }),
        )
    }

    /// Adds a length-`n` bias row to every row of an `[m, n]` tensor.
    pub fn add_row(&self, bias: &Tensor) -> Tensor {
        assert_eq!(self.shape().len(), 2, "add_row input must be 2-D");
        assert_eq!(bias.shape().len(), 1, "bias must be 1-D");
        let (m, n) = (self.shape()[0], self.shape()[1]);
        assert_eq!(bias.len(), n, "bias length must equal row width");
        let b = bias.data();
        let data: Vec<f32> = self
            .data()
            .iter()
            .enumerate()
            .map(|(i, a)| a + b[i % n])
            .collect();
        drop(b);
        Tensor::from_op(
            vec![m, n],
            data,
            vec![self.clone(), bias.clone()],
            Box::new(move |grad, parents| {
                parents[0].accumulate_grad(grad);
                let mut gb = vec![0.0f32; n];
                for (i, g) in grad.iter().enumerate() {
                    gb[i % n] += g;
                }
                parents[1].accumulate_grad(&gb);
            }),
        )
    }

    /// Rectified linear unit.
    pub fn relu(&self) -> Tensor {
        let data: Vec<f32> = self.data().iter().map(|a| a.max(0.0)).collect();
        Tensor::from_op(
            self.shape().to_vec(),
            data,
            vec![self.clone()],
            Box::new(|grad, parents| {
                with_scratch(grad.len(), |g| {
                    {
                        let x = parents[0].data();
                        for i in 0..grad.len() {
                            g[i] = if x[i] > 0.0 { grad[i] } else { 0.0 };
                        }
                    }
                    parents[0].accumulate_grad(g);
                });
            }),
        )
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self) -> Tensor {
        let data: Vec<f32> = self.data().iter().map(|a| a.tanh()).collect();
        let saved = data.clone();
        Tensor::from_op(
            self.shape().to_vec(),
            data,
            vec![self.clone()],
            Box::new(move |grad, parents| {
                with_scratch(grad.len(), |g| {
                    for ((o, gv), y) in g.iter_mut().zip(grad).zip(&saved) {
                        *o = gv * (1.0 - y * y);
                    }
                    parents[0].accumulate_grad(g);
                });
            }),
        )
    }

    /// Sum of all elements, as a scalar tensor.
    pub fn sum(&self) -> Tensor {
        let total: f32 = self.data().iter().sum();
        let numel = self.len();
        Tensor::from_op(
            vec![1],
            vec![total],
            vec![self.clone()],
            Box::new(move |grad, parents| {
                let g = vec![grad[0]; numel];
                parents[0].accumulate_grad(&g);
            }),
        )
    }

    /// Mean of all elements, as a scalar tensor.
    pub fn mean(&self) -> Tensor {
        let numel = self.len();
        self.sum().scale(1.0 / numel as f32)
    }

    /// Row-wise `log(softmax(x))` for a 2-D `[m, n]` tensor, computed with
    /// the max-subtraction trick for numerical stability.
    pub fn log_softmax(&self) -> Tensor {
        assert_eq!(self.shape().len(), 2, "log_softmax input must be 2-D");
        let (m, n) = (self.shape()[0], self.shape()[1]);
        let x = self.data();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let row = &x[i * n..(i + 1) * n];
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let log_sum = row.iter().map(|v| (v - max).exp()).sum::<f32>().ln() + max;
            for j in 0..n {
                out[i * n + j] = row[j] - log_sum;
            }
        }
        drop(x);
        let saved = out.clone();
        Tensor::from_op(
            vec![m, n],
            out,
            vec![self.clone()],
            Box::new(move |grad, parents| {
                // d/dx_j = g_j − softmax_j · Σ_k g_k  (per row).
                let mut gx = vec![0.0f32; m * n];
                for i in 0..m {
                    let gsum: f32 = grad[i * n..(i + 1) * n].iter().sum();
                    for j in 0..n {
                        let p = saved[i * n + j].exp();
                        gx[i * n + j] = grad[i * n + j] - p * gsum;
                    }
                }
                parents[0].accumulate_grad(&gx);
            }),
        )
    }

    /// Negative log-likelihood loss: mean over rows of `−log_probs[i, target_i]`.
    /// Input must be row-wise log-probabilities (see [`Tensor::log_softmax`]).
    pub fn nll_loss(&self, targets: &[usize]) -> Tensor {
        assert_eq!(self.shape().len(), 2, "nll_loss input must be 2-D");
        let (m, n) = (self.shape()[0], self.shape()[1]);
        assert_eq!(targets.len(), m, "one target per row required");
        let x = self.data();
        let mut total = 0.0f32;
        for (i, &t) in targets.iter().enumerate() {
            assert!(t < n, "target {t} out of range for {n} classes");
            total -= x[i * n + t];
        }
        drop(x);
        let targets = targets.to_vec();
        Tensor::from_op(
            vec![1],
            vec![total / m as f32],
            vec![self.clone()],
            Box::new(move |grad, parents| {
                let mut gx = vec![0.0f32; m * n];
                let scale = grad[0] / m as f32;
                for (i, &t) in targets.iter().enumerate() {
                    gx[i * n + t] = -scale;
                }
                parents[0].accumulate_grad(&gx);
            }),
        )
    }

    /// Cross-entropy loss from raw logits: `nll_loss(log_softmax(x))`.
    pub fn cross_entropy(&self, targets: &[usize]) -> Tensor {
        self.log_softmax().nll_loss(targets)
    }

    /// Returns a view with a new shape (same element count, same storage
    /// semantics — gradients flow straight through).
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, shape: Vec<usize>) -> Tensor {
        let numel: usize = shape.iter().product();
        assert_eq!(numel, self.len(), "reshape cannot change element count");
        Tensor::from_op(
            shape,
            self.to_vec(),
            vec![self.clone()],
            Box::new(|grad, parents| {
                parents[0].accumulate_grad(grad);
            }),
        )
    }

    /// Transpose of a 2-D tensor.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.shape().len(), 2, "transpose input must be 2-D");
        let (m, n) = (self.shape()[0], self.shape()[1]);
        let x = self.data();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = x[i * n + j];
            }
        }
        drop(x);
        Tensor::from_op(
            vec![n, m],
            out,
            vec![self.clone()],
            Box::new(move |grad, parents| {
                let mut g = vec![0.0f32; m * n];
                for i in 0..m {
                    for j in 0..n {
                        g[i * n + j] = grad[j * m + i];
                    }
                }
                parents[0].accumulate_grad(&g);
            }),
        )
    }

    /// Row-wise argmax of a 2-D tensor (no gradient).
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(self.shape().len(), 2, "argmax_rows input must be 2-D");
        let (m, n) = (self.shape()[0], self.shape()[1]);
        let x = self.data();
        (0..m)
            .map(|i| {
                let row = &x[i * n..(i + 1) * n];
                // total_cmp keeps a stable answer even when a diverged
                // model emits NaN logits (NaN sorts above +inf, so a
                // NaN row yields an arbitrary-but-valid class index).
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(j, _)| j)
                    .expect("nonempty row")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradient_check;

    #[test]
    fn add_sub_mul_forward() {
        let a = Tensor::from_vec(vec![3], vec![1.0, 2.0, 3.0]);
        let b = Tensor::from_vec(vec![3], vec![4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).to_vec(), vec![5.0, 7.0, 9.0]);
        assert_eq!(a.sub(&b).to_vec(), vec![-3.0, -3.0, -3.0]);
        assert_eq!(a.mul(&b).to_vec(), vec![4.0, 10.0, 18.0]);
        assert_eq!(a.neg().to_vec(), vec![-1.0, -2.0, -3.0]);
    }

    #[test]
    fn matmul_forward() {
        let a = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let b = Tensor::from_vec(vec![2, 2], vec![5.0, 6.0, 7.0, 8.0]);
        assert_eq!(a.matmul(&b).to_vec(), vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_gradients() {
        let x = [0.5f32, -1.0, 2.0, 0.25, 1.5, -0.75];
        let err = gradient_check(
            &x,
            &[2, 3],
            |t| {
                let w = Tensor::from_vec(vec![3, 2], vec![0.1, -0.2, 0.3, 0.4, -0.5, 0.6]);
                t.matmul(&w).mul(&t.matmul(&w)).sum()
            },
            1e-2,
        );
        assert!(err < 5e-2, "max deviation {err}");
    }

    #[test]
    fn relu_and_tanh_gradients() {
        let x = [0.5f32, -1.0, 2.0, -0.3];
        let err = gradient_check(&x, &[4], |t| t.relu().sum(), 1e-3);
        assert!(err < 1e-2);
        let err = gradient_check(&x, &[4], |t| t.tanh().mul(&t.tanh()).sum(), 1e-3);
        assert!(err < 1e-2);
    }

    #[test]
    fn log_softmax_rows_sum_to_one_in_prob_space() {
        let t = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        let ls = t.log_softmax();
        let data = ls.to_vec();
        for i in 0..2 {
            let s: f32 = data[i * 3..(i + 1) * 3].iter().map(|v| v.exp()).sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn cross_entropy_gradient() {
        let x = [1.0f32, -0.5, 0.25, 2.0, 0.0, -1.0];
        let err = gradient_check(&x, &[2, 3], |t| t.cross_entropy(&[2, 0]), 1e-2);
        assert!(err < 1e-2, "max deviation {err}");
    }

    #[test]
    fn cross_entropy_of_uniform_logits_is_log_n() {
        let t = Tensor::from_vec(vec![1, 4], vec![0.0; 4]);
        let loss = t.cross_entropy(&[1]).item();
        assert!((loss - 4.0f32.ln()).abs() < 1e-6);
    }

    #[test]
    fn add_row_broadcast() {
        let x = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]).requires_grad();
        let b = Tensor::from_vec(vec![2], vec![10.0, 20.0]).requires_grad();
        let y = x.add_row(&b);
        assert_eq!(y.to_vec(), vec![11.0, 22.0, 13.0, 24.0]);
        y.sum().backward();
        assert_eq!(b.grad_vec().unwrap(), vec![2.0, 2.0]);
        assert_eq!(x.grad_vec().unwrap(), vec![1.0; 4]);
    }

    #[test]
    fn reshape_and_transpose() {
        let t = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(t.reshape(vec![3, 2]).shape(), &[3, 2]);
        let tt = t.transpose();
        assert_eq!(tt.shape(), &[3, 2]);
        assert_eq!(tt.to_vec(), vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
    }

    #[test]
    fn transpose_gradient_flows() {
        let x = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]).requires_grad();
        let y = x.transpose().mul(&x.transpose()).sum();
        y.backward();
        assert_eq!(x.grad_vec().unwrap(), vec![2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn argmax_rows() {
        let t = Tensor::from_vec(vec![2, 3], vec![0.1, 0.9, 0.0, 5.0, -1.0, 2.0]);
        assert_eq!(t.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn mean_gradient_is_uniform() {
        let x = Tensor::from_vec(vec![4], vec![1.0, 2.0, 3.0, 4.0]).requires_grad();
        x.mean().backward();
        assert_eq!(x.grad_vec().unwrap(), vec![0.25; 4]);
    }
}
