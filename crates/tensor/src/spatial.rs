//! Spatial (image) operations: im2col, NCHW layout shuffles and max
//! pooling — the building blocks for 2-D convolution in `byz-nn`.

use crate::Tensor;

/// Output spatial size of a conv/pool window sweep.
pub fn conv_output_size(input: usize, kernel: usize, stride: usize, pad: usize) -> usize {
    (input + 2 * pad - kernel) / stride + 1
}

impl Tensor {
    /// im2col: unfolds an NCHW tensor `[n, c, h, w]` into a patch matrix of
    /// shape `[n·oh·ow, c·kh·kw]`, where each row is one receptive field.
    /// Convolution is then a plain matrix product with the reshaped kernel.
    ///
    /// Gradients flow back by scattering patch-gradients into the image
    /// (col2im).
    ///
    /// # Panics
    ///
    /// Panics unless the tensor is 4-D and the window fits.
    pub fn im2col(&self, kernel: (usize, usize), stride: usize, pad: usize) -> Tensor {
        let &[n, c, h, w] = self.shape() else {
            panic!("im2col input must be 4-D NCHW, got {:?}", self.shape());
        };
        let (kh, kw) = kernel;
        let oh = conv_output_size(h, kh, stride, pad);
        let ow = conv_output_size(w, kw, stride, pad);
        assert!(oh > 0 && ow > 0, "window does not fit input");

        let x = self.data();
        let rows = n * oh * ow;
        let cols = c * kh * kw;
        let mut out = vec![0.0f32; rows * cols];
        for ni in 0..n {
            for oy in 0..oh {
                for ox in 0..ow {
                    let row = (ni * oh + oy) * ow + ox;
                    for ci in 0..c {
                        for ky in 0..kh {
                            let iy = (oy * stride + ky) as isize - pad as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..kw {
                                let ix = (ox * stride + kx) as isize - pad as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                let col = (ci * kh + ky) * kw + kx;
                                out[row * cols + col] =
                                    x[((ni * c + ci) * h + iy as usize) * w + ix as usize];
                            }
                        }
                    }
                }
            }
        }
        drop(x);

        Tensor::from_op(
            vec![rows, cols],
            out,
            vec![self.clone()],
            Box::new(move |grad, parents| {
                // col2im: scatter-add each patch gradient back.
                let mut gx = vec![0.0f32; n * c * h * w];
                for ni in 0..n {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let row = (ni * oh + oy) * ow + ox;
                            for ci in 0..c {
                                for ky in 0..kh {
                                    let iy = (oy * stride + ky) as isize - pad as isize;
                                    if iy < 0 || iy >= h as isize {
                                        continue;
                                    }
                                    for kx in 0..kw {
                                        let ix = (ox * stride + kx) as isize - pad as isize;
                                        if ix < 0 || ix >= w as isize {
                                            continue;
                                        }
                                        let col = (ci * kh + ky) * kw + kx;
                                        gx[((ni * c + ci) * h + iy as usize) * w + ix as usize] +=
                                            grad[row * cols + col];
                                    }
                                }
                            }
                        }
                    }
                }
                parents[0].accumulate_grad(&gx);
            }),
        )
    }

    /// Rearranges a patch-matmul result `[n·oh·ow, o]` into NCHW
    /// `[n, o, oh, ow]` (the inverse of the row layout [`Tensor::im2col`]
    /// produces).
    pub fn rows_to_nchw(&self, n: usize, oh: usize, ow: usize) -> Tensor {
        let &[rows, o] = self.shape() else {
            panic!("rows_to_nchw input must be 2-D, got {:?}", self.shape());
        };
        assert_eq!(rows, n * oh * ow, "row count must equal n·oh·ow");
        let x = self.data();
        let mut out = vec![0.0f32; rows * o];
        for ni in 0..n {
            for oy in 0..oh {
                for ox in 0..ow {
                    let row = (ni * oh + oy) * ow + ox;
                    for oc in 0..o {
                        out[((ni * o + oc) * oh + oy) * ow + ox] = x[row * o + oc];
                    }
                }
            }
        }
        drop(x);
        Tensor::from_op(
            vec![n, o, oh, ow],
            out,
            vec![self.clone()],
            Box::new(move |grad, parents| {
                let mut gx = vec![0.0f32; n * oh * ow * o];
                for ni in 0..n {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let row = (ni * oh + oy) * ow + ox;
                            for oc in 0..o {
                                gx[row * o + oc] = grad[((ni * o + oc) * oh + oy) * ow + ox];
                            }
                        }
                    }
                }
                parents[0].accumulate_grad(&gx);
            }),
        )
    }

    /// 2-D max pooling over an NCHW tensor with square window `k` and the
    /// given stride. Backward routes gradients to each window's argmax.
    pub fn maxpool2d(&self, k: usize, stride: usize) -> Tensor {
        let &[n, c, h, w] = self.shape() else {
            panic!("maxpool2d input must be 4-D NCHW, got {:?}", self.shape());
        };
        let oh = conv_output_size(h, k, stride, 0);
        let ow = conv_output_size(w, k, stride, 0);
        assert!(oh > 0 && ow > 0, "window does not fit input");

        let x = self.data();
        let mut out = vec![0.0f32; n * c * oh * ow];
        let mut argmax = vec![0usize; n * c * oh * ow];
        for ni in 0..n {
            for ci in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0usize;
                        for ky in 0..k {
                            for kx in 0..k {
                                let iy = oy * stride + ky;
                                let ix = ox * stride + kx;
                                let idx = ((ni * c + ci) * h + iy) * w + ix;
                                if x[idx] > best {
                                    best = x[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        let oidx = ((ni * c + ci) * oh + oy) * ow + ox;
                        out[oidx] = best;
                        argmax[oidx] = best_idx;
                    }
                }
            }
        }
        drop(x);

        let input_len = n * c * h * w;
        Tensor::from_op(
            vec![n, c, oh, ow],
            out,
            vec![self.clone()],
            Box::new(move |grad, parents| {
                let mut gx = vec![0.0f32; input_len];
                for (g, &idx) in grad.iter().zip(&argmax) {
                    gx[idx] += g;
                }
                parents[0].accumulate_grad(&gx);
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradient_check;

    #[test]
    fn conv_output_sizes() {
        assert_eq!(conv_output_size(8, 3, 1, 1), 8); // "same" padding
        assert_eq!(conv_output_size(8, 3, 1, 0), 6);
        assert_eq!(conv_output_size(8, 2, 2, 0), 4);
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1x1 kernel, stride 1: im2col is just a reshape.
        let t = Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let cols = t.im2col((1, 1), 1, 0);
        assert_eq!(cols.shape(), &[4, 1]);
        assert_eq!(cols.to_vec(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn im2col_known_patches() {
        // 2x2 input, 2x2 kernel, no pad: a single patch.
        let t = Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let cols = t.im2col((2, 2), 1, 0);
        assert_eq!(cols.shape(), &[1, 4]);
        assert_eq!(cols.to_vec(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn im2col_padding_zero_fills() {
        let t = Tensor::from_vec(vec![1, 1, 1, 1], vec![5.0]);
        // 3x3 kernel centred with pad 1: one patch, centre is the pixel.
        let cols = t.im2col((3, 3), 1, 1);
        assert_eq!(cols.shape(), &[1, 9]);
        let v = cols.to_vec();
        assert_eq!(v[4], 5.0);
        assert_eq!(v.iter().filter(|&&x| x == 0.0).count(), 8);
    }

    #[test]
    fn im2col_gradients() {
        let x: Vec<f32> = (0..16).map(|i| (i as f32) * 0.3 - 2.0).collect();
        let err = gradient_check(
            &x,
            &[1, 1, 4, 4],
            |t| {
                let c = t.im2col((3, 3), 1, 1);
                c.mul(&c).sum()
            },
            1e-2,
        );
        assert!(err < 5e-2, "max deviation {err}");
    }

    #[test]
    fn rows_to_nchw_roundtrip_values() {
        // 2 output pixels (oh=1, ow=2), 3 output channels, n=1.
        let rows = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let nchw = rows.rows_to_nchw(1, 1, 2);
        assert_eq!(nchw.shape(), &[1, 3, 1, 2]);
        // Channel 0: pixels [1, 4]; channel 1: [2, 5]; channel 2: [3, 6].
        assert_eq!(nchw.to_vec(), vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
    }

    #[test]
    fn maxpool_forward_and_backward() {
        let t = Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0, 5.0, 3.0, 2.0]).requires_grad();
        let p = t.maxpool2d(2, 2);
        assert_eq!(p.shape(), &[1, 1, 1, 1]);
        assert_eq!(p.item(), 5.0);
        p.sum().backward();
        assert_eq!(t.grad_vec().unwrap(), vec![0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn maxpool_gradients_numeric() {
        // Use distinct values so argmax is stable under the ±eps probes.
        let x: Vec<f32> = (0..16).map(|i| i as f32).collect();
        let err = gradient_check(&x, &[1, 1, 4, 4], |t| t.maxpool2d(2, 2).sum(), 1e-3);
        assert!(err < 1e-2, "max deviation {err}");
    }
}
