//! Bipartite worker–file assignment graphs and their expansion properties.
//!
//! ByzShield assigns each batch's `f` files to `K` workers according to a
//! bipartite graph `G = (U ∪ F, E)` (paper Section 2, "Worker Assignment").
//! The robustness analysis (Section 3) hinges on the *expansion* of `G`:
//! a set `S` of Byzantine workers collectively touches at least
//!
//! ```text
//! |N(S)| ≥ β = (q·l/r) / (µ₁ + (1 − µ₁)·q/K)        (Eq. 5)
//! ```
//!
//! files, where `µ₁` is the second-largest eigenvalue of `A·Aᵀ` for the
//! normalized bi-adjacency matrix `A = H/√(d_L·d_R)`. Claim 1 then bounds
//! the number of majority-distortable files:
//!
//! ```text
//! c_max(q) ≤ γ = (q·l − β) / ((r − 1)/2)
//! ```
//!
//! This crate provides [`BipartiteGraph`] with neighbor/volume queries, the
//! normalized spectrum, and [`ExpansionBound`] computing β and γ.

use byz_linalg::{cluster_spectrum, symmetric_eigenvalues, EigenError, Matrix};
use std::collections::BTreeSet;
use std::fmt;

/// Errors from graph construction and analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// An edge referenced a worker or file index out of range.
    IndexOutOfRange {
        kind: &'static str,
        index: usize,
        limit: usize,
    },
    /// The graph is not left/right biregular, which the spectral analysis
    /// assumes.
    NotBiregular,
    /// A spectral computation failed.
    Eigen(EigenError),
    /// The graph has no edges, so degrees/spectra are undefined.
    Empty,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::IndexOutOfRange { kind, index, limit } => {
                write!(f, "{kind} index {index} out of range (limit {limit})")
            }
            GraphError::NotBiregular => write!(f, "graph is not biregular"),
            GraphError::Eigen(e) => write!(f, "spectral computation failed: {e}"),
            GraphError::Empty => write!(f, "graph has no edges"),
        }
    }
}

impl std::error::Error for GraphError {}

impl From<EigenError> for GraphError {
    fn from(e: EigenError) -> Self {
        GraphError::Eigen(e)
    }
}

/// A bipartite graph between `workers` (left vertices) and `files` (right
/// vertices), stored as adjacency lists both ways.
///
/// Worker and file vertices are identified by their indices
/// `0..num_workers` and `0..num_files`.
#[derive(Debug, Clone, PartialEq)]
pub struct BipartiteGraph {
    num_workers: usize,
    num_files: usize,
    /// `worker_files[u]` = sorted file indices assigned to worker `u`.
    worker_files: Vec<Vec<usize>>,
    /// `file_workers[v]` = sorted worker indices holding file `v`.
    file_workers: Vec<Vec<usize>>,
}

impl BipartiteGraph {
    /// Creates an empty bipartite graph with the given vertex counts.
    pub fn new(num_workers: usize, num_files: usize) -> Self {
        BipartiteGraph {
            num_workers,
            num_files,
            worker_files: vec![Vec::new(); num_workers],
            file_workers: vec![Vec::new(); num_files],
        }
    }

    /// Builds a graph from an explicit edge list.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::IndexOutOfRange`] on bad indices.
    pub fn from_edges(
        num_workers: usize,
        num_files: usize,
        edges: &[(usize, usize)],
    ) -> Result<Self, GraphError> {
        let mut g = BipartiteGraph::new(num_workers, num_files);
        for &(u, v) in edges {
            g.add_edge(u, v)?;
        }
        Ok(g)
    }

    /// Builds a graph from a 0/1 bi-adjacency matrix `H` whose rows are
    /// workers and whose columns are files.
    pub fn from_biadjacency(h: &Matrix) -> Self {
        let mut g = BipartiteGraph::new(h.rows(), h.cols());
        for u in 0..h.rows() {
            for v in 0..h.cols() {
                if h[(u, v)] != 0.0 {
                    g.add_edge(u, v).expect("indices in range by construction");
                }
            }
        }
        g
    }

    /// Adds the edge `(worker, file)`; duplicate edges are ignored.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::IndexOutOfRange`] on bad indices.
    pub fn add_edge(&mut self, worker: usize, file: usize) -> Result<(), GraphError> {
        if worker >= self.num_workers {
            return Err(GraphError::IndexOutOfRange {
                kind: "worker",
                index: worker,
                limit: self.num_workers,
            });
        }
        if file >= self.num_files {
            return Err(GraphError::IndexOutOfRange {
                kind: "file",
                index: file,
                limit: self.num_files,
            });
        }
        if let Err(pos) = self.worker_files[worker].binary_search(&file) {
            self.worker_files[worker].insert(pos, file);
            let wpos = self.file_workers[file]
                .binary_search(&worker)
                .expect_err("edge sets must stay consistent");
            self.file_workers[file].insert(wpos, worker);
        }
        Ok(())
    }

    /// Number of worker (left) vertices.
    #[inline]
    pub fn num_workers(&self) -> usize {
        self.num_workers
    }

    /// Number of file (right) vertices.
    #[inline]
    pub fn num_files(&self) -> usize {
        self.num_files
    }

    /// Total number of edges.
    pub fn num_edges(&self) -> usize {
        self.worker_files.iter().map(Vec::len).sum()
    }

    /// Files assigned to `worker` — the paper's `N(U_j)`.
    #[inline]
    pub fn files_of(&self, worker: usize) -> &[usize] {
        &self.worker_files[worker]
    }

    /// Workers holding `file` — the paper's `N(B_{t,i})`.
    #[inline]
    pub fn workers_of(&self, file: usize) -> &[usize] {
        &self.file_workers[file]
    }

    /// The set of files touched by any worker in `workers` (`N(S)`).
    pub fn file_neighborhood(&self, workers: &[usize]) -> BTreeSet<usize> {
        let mut out = BTreeSet::new();
        for &u in workers {
            out.extend(self.worker_files[u].iter().copied());
        }
        out
    }

    /// Volume (sum of degrees) of a set of workers.
    pub fn worker_volume(&self, workers: &[usize]) -> usize {
        workers.iter().map(|&u| self.worker_files[u].len()).sum()
    }

    /// Left degree if all workers have equal degree.
    pub fn left_degree(&self) -> Option<usize> {
        let d = self.worker_files.first()?.len();
        self.worker_files
            .iter()
            .all(|fs| fs.len() == d)
            .then_some(d)
    }

    /// Right degree (replication factor `r`) if all files have equal degree.
    pub fn right_degree(&self) -> Option<usize> {
        let d = self.file_workers.first()?.len();
        self.file_workers
            .iter()
            .all(|ws| ws.len() == d)
            .then_some(d)
    }

    /// `true` when the graph is (d_L, d_R)-biregular.
    pub fn is_biregular(&self) -> bool {
        self.left_degree().is_some() && self.right_degree().is_some()
    }

    /// The 0/1 bi-adjacency matrix `H` (workers × files).
    pub fn biadjacency(&self) -> Matrix {
        let mut h = Matrix::zeros(self.num_workers, self.num_files);
        for (u, files) in self.worker_files.iter().enumerate() {
            for &v in files {
                h[(u, v)] = 1.0;
            }
        }
        h
    }

    /// The normalized bi-adjacency matrix `A = H / √(d_L·d_R)`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NotBiregular`] if degrees are not constant, or
    /// [`GraphError::Empty`] for an edgeless graph.
    pub fn normalized_biadjacency(&self) -> Result<Matrix, GraphError> {
        if self.num_edges() == 0 {
            return Err(GraphError::Empty);
        }
        let dl = self.left_degree().ok_or(GraphError::NotBiregular)?;
        let dr = self.right_degree().ok_or(GraphError::NotBiregular)?;
        Ok(self.biadjacency().scale(1.0 / ((dl * dr) as f64).sqrt()))
    }

    /// Eigenvalues of `A·Aᵀ` in decreasing order (paper Section 3). The
    /// leading eigenvalue is 1 for any biregular graph.
    pub fn gram_spectrum(&self) -> Result<Vec<f64>, GraphError> {
        let a = self.normalized_biadjacency()?;
        let gram = a
            .matmul(&a.transpose())
            .expect("A·Aᵀ dimensions always agree");
        Ok(symmetric_eigenvalues(&gram)?)
    }

    /// Second-largest eigenvalue `µ₁` of `A·Aᵀ`.
    pub fn second_eigenvalue(&self) -> Result<f64, GraphError> {
        let spec = self.gram_spectrum()?;
        spec.get(1).copied().ok_or(GraphError::Empty)
    }

    /// Groups the spectrum of `A·Aᵀ` into `(eigenvalue, multiplicity)`
    /// clusters — convenient for checking Lemma 2 statements.
    pub fn clustered_spectrum(&self, tol: f64) -> Result<Vec<(f64, usize)>, GraphError> {
        Ok(cluster_spectrum(&self.gram_spectrum()?, tol))
    }

    /// Expansion/distortion bounds for this graph (β of Eq. 5 and γ of
    /// Claim 1) for a given number of Byzantine workers `q`.
    ///
    /// # Errors
    ///
    /// Propagates spectral errors; also requires biregularity.
    pub fn expansion_bound(&self, q: usize) -> Result<ExpansionBound, GraphError> {
        let l = self.left_degree().ok_or(GraphError::NotBiregular)?;
        let r = self.right_degree().ok_or(GraphError::NotBiregular)?;
        let mu1 = self.second_eigenvalue()?;
        Ok(ExpansionBound::new(
            self.num_workers,
            self.num_files,
            l,
            r,
            mu1,
            q,
        ))
    }
}

/// The spectral expansion bounds of paper Eq. (5) and Claim 1 for a
/// specific `(K, f, l, r, µ₁, q)` configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpansionBound {
    /// Number of workers `K`.
    pub num_workers: usize,
    /// Number of files `f`.
    pub num_files: usize,
    /// Computational load `l` (files per worker).
    pub load: usize,
    /// Replication factor `r` (workers per file).
    pub replication: usize,
    /// Second-largest eigenvalue `µ₁` of `A·Aᵀ`.
    pub mu1: f64,
    /// Number of Byzantine workers `q`.
    pub num_byzantine: usize,
}

impl ExpansionBound {
    /// Builds the bound object from explicit parameters.
    pub fn new(
        num_workers: usize,
        num_files: usize,
        load: usize,
        replication: usize,
        mu1: f64,
        num_byzantine: usize,
    ) -> Self {
        ExpansionBound {
            num_workers,
            num_files,
            load,
            replication,
            mu1,
            num_byzantine,
        }
    }

    /// β — lower bound on `|N(S)|`, the number of files collectively
    /// processed by the `q` Byzantines (Eq. 5).
    pub fn beta(&self) -> f64 {
        let q = self.num_byzantine as f64;
        let l = self.load as f64;
        let r = self.replication as f64;
        let k = self.num_workers as f64;
        (q * l / r) / (self.mu1 + (1.0 - self.mu1) * q / k)
    }

    /// γ — upper bound on the number of distortable files `c_max(q)`
    /// (Claim 1). Defined for odd replication `r ≥ 3`.
    pub fn gamma(&self) -> f64 {
        let q = self.num_byzantine as f64;
        let l = self.load as f64;
        let r = self.replication as f64;
        (q * l - self.beta()) / ((r - 1.0) / 2.0)
    }

    /// γ/f — upper bound on the distortion *fraction* ε̂ (Section 5.1).
    pub fn epsilon_hat_bound(&self) -> f64 {
        self.gamma() / self.num_files as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Figure 1 toy graph: K = 6 workers, f = 4 files, r = 3, l = 2.
    fn figure1_graph() -> BipartiteGraph {
        BipartiteGraph::from_edges(
            6,
            4,
            &[
                (0, 0),
                (0, 1),
                (1, 1),
                (1, 2),
                (2, 2),
                (2, 3),
                (3, 3),
                (3, 0),
                (4, 0),
                (4, 2),
                (5, 1),
                (5, 3),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_and_queries() {
        let g = figure1_graph();
        assert_eq!(g.num_workers(), 6);
        assert_eq!(g.num_files(), 4);
        assert_eq!(g.num_edges(), 12);
        assert_eq!(g.files_of(0), &[0, 1]);
        assert_eq!(g.workers_of(0), &[0, 3, 4]);
        assert!(g.is_biregular());
        assert_eq!(g.left_degree(), Some(2));
        assert_eq!(g.right_degree(), Some(3));
    }

    #[test]
    fn duplicate_edges_ignored() {
        let mut g = BipartiteGraph::new(2, 2);
        g.add_edge(0, 1).unwrap();
        g.add_edge(0, 1).unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut g = BipartiteGraph::new(2, 2);
        assert!(matches!(
            g.add_edge(2, 0),
            Err(GraphError::IndexOutOfRange { kind: "worker", .. })
        ));
        assert!(matches!(
            g.add_edge(0, 5),
            Err(GraphError::IndexOutOfRange { kind: "file", .. })
        ));
    }

    #[test]
    fn neighborhood_and_volume() {
        let g = figure1_graph();
        let n = g.file_neighborhood(&[0, 1]);
        assert_eq!(n.into_iter().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(g.worker_volume(&[0, 1, 2]), 6);
    }

    #[test]
    fn leading_eigenvalue_is_one() {
        let g = figure1_graph();
        let spec = g.gram_spectrum().unwrap();
        assert!((spec[0] - 1.0).abs() < 1e-9);
        for w in spec.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn biadjacency_roundtrip() {
        let g = figure1_graph();
        let h = g.biadjacency();
        let g2 = BipartiteGraph::from_biadjacency(&h);
        assert_eq!(g, g2);
    }

    #[test]
    fn non_biregular_detected() {
        let g = BipartiteGraph::from_edges(2, 2, &[(0, 0), (0, 1), (1, 0)]).unwrap();
        assert!(!g.is_biregular());
        assert_eq!(
            g.normalized_biadjacency().unwrap_err(),
            GraphError::NotBiregular
        );
    }

    #[test]
    fn expansion_bound_formulas() {
        // Hand-check β and γ for the paper's Example 1 parameters
        // (K, f, l, r) = (15, 25, 5, 3) with µ₁ = 1/3 (Lemma 2) and q = 5:
        // β = (25/3) / (1/3 + (2/3)(1/3)) = (25/3)/(5/9) = 15,
        // γ = (25 − 15)/1 = 10 — matching Table 3's γ = 10 at q = 5.
        let b = ExpansionBound::new(15, 25, 5, 3, 1.0 / 3.0, 5);
        assert!((b.beta() - 15.0).abs() < 1e-12);
        assert!((b.gamma() - 10.0).abs() < 1e-12);
        assert!((b.epsilon_hat_bound() - 0.4).abs() < 1e-12);
    }
}
