//! Property tests of DRACO's exact-recovery guarantee: for ANY Byzantine
//! set within the code radius and ANY corruption values, both decoders
//! return the exact (clean-run) result.

use byz_draco::{CyclicCode, DracoError, FrcCode};
use proptest::prelude::*;

fn grads(k: usize, d: usize, seed: u64) -> Vec<Vec<f32>> {
    (0..k)
        .map(|i| {
            (0..d)
                .map(|j| {
                    let h = (i as u64)
                        .wrapping_mul(0x9E37_79B9)
                        .wrapping_add(j as u64)
                        .wrapping_add(seed);
                    ((h % 1000) as f32) / 100.0 - 5.0
                })
                .collect()
        })
        .collect()
}

fn sum(grads: &[Vec<f32>]) -> Vec<f32> {
    let mut s = vec![0.0f32; grads[0].len()];
    for g in grads {
        for (sv, gv) in s.iter_mut().zip(g) {
            *sv += gv;
        }
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn frc_exact_recovery(
        seed in 0u64..1_000,
        byz in prop::collection::btree_set(0usize..15, 0..=2),
        payload in -1e6f32..1e6,
    ) {
        // K = 15, r = 5 tolerates any q ≤ 2.
        let code = FrcCode::new(15, 5).unwrap();
        let groups = grads(3, 4, seed);
        let mut returns = code.encode(&groups).unwrap();
        for &w in &byz {
            returns[w] = vec![payload; 4];
        }
        let decoded = code.decode(&returns, 2).unwrap();
        let expected = sum(&groups);
        for (a, b) in decoded.iter().zip(&expected) {
            prop_assert!((a - b).abs() < 1e-3, "{} vs {}", a, b);
        }
    }

    #[test]
    fn cyclic_exact_recovery(
        seed in 0u64..1_000,
        byz in prop::collection::btree_set(0usize..12, 0..=2),
        payload in prop::collection::vec(-1e4f32..1e4, 6),
    ) {
        let code = CyclicCode::new(12, 2).unwrap();
        let files = grads(12, 3, seed);
        let mut returns = code.encode(&files).unwrap();
        for &w in &byz {
            returns[w] = payload.clone();
        }
        match code.decode_sum(&returns) {
            Ok(decoded) => {
                let expected = sum(&files);
                for (a, b) in decoded.iter().zip(&expected) {
                    prop_assert!((a - b).abs() < 0.5, "{} vs {}", a, b);
                }
            }
            // A payload that happens to be consistent with the honest
            // codeword (e.g. near-zero corruption) may be undetectable,
            // but then it is also harmless; only treat real failures as
            // errors.
            Err(DracoError::DecodingFailed) => {
                prop_assert!(false, "decoding failed within the radius");
            }
            Err(e) => prop_assert!(false, "unexpected error: {e}"),
        }
    }

    #[test]
    fn cyclic_encoding_is_linear(seed in 0u64..500) {
        // encode(a + b) = encode(a) + encode(b): the property that lets
        // the PS decode sums of per-file gradients.
        let code = CyclicCode::new(10, 1).unwrap();
        let a = grads(10, 2, seed);
        let b = grads(10, 2, seed.wrapping_add(77));
        let ab: Vec<Vec<f32>> = a
            .iter()
            .zip(&b)
            .map(|(x, y)| x.iter().zip(y).map(|(u, v)| u + v).collect())
            .collect();
        let ea = code.encode(&a).unwrap();
        let eb = code.encode(&b).unwrap();
        let eab = code.encode(&ab).unwrap();
        for i in 0..10 {
            for j in 0..2 {
                prop_assert!((eab[i][j] - (ea[i][j] + eb[i][j])).abs() < 1e-3);
            }
        }
    }
}

/// The information-theoretic wall, deterministically: a q = 2 code facing
/// 3 coordinated adversaries either fails loudly or — if the adversary is
/// clever enough to forge a consistent syndrome — returns a wrong sum.
/// Either way r < 2q + 1 has no exactness guarantee, which is why
/// ByzShield's bounded-distortion trade-off exists.
#[test]
fn radius_is_tight() {
    let code = CyclicCode::new(15, 2).unwrap();
    let files = grads(15, 4, 9);
    let mut returns = code.encode(&files).unwrap();
    returns[0] = vec![1e5; 8];
    returns[5] = vec![1e5; 8];
    returns[10] = vec![1e5; 8];
    match code.decode_sum(&returns) {
        Err(DracoError::DecodingFailed) => {}
        Ok(decoded) => {
            let expected = sum(&files);
            let wrong = decoded
                .iter()
                .zip(&expected)
                .any(|(a, b)| (a - b).abs() > 1.0);
            assert!(
                wrong,
                "3 errors against a 2-error code cannot be silently exact"
            );
        }
        Err(e) => panic!("unexpected error {e}"),
    }
}
