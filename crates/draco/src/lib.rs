//! DRACO-style exact-recovery gradient coding (Chen et al. 2018,
//! Raviv et al. 2018) — the redundancy-based comparator of the paper's
//! Sections 1.2 and 5.3.1.
//!
//! DRACO guarantees *exact* recovery of the batch gradient (as if no
//! adversary existed) whenever each gradient is replicated
//! `r ≥ 2q + 1` times — the information-theoretic minimum. ByzShield's
//! point of comparison: that requirement is very restrictive (q = 5 needs
//! r = 11), whereas ByzShield accepts a small *bounded distortion* with
//! r = 3 or 5. This crate implements both DRACO decoders so the trade-off
//! can be measured rather than asserted:
//!
//! * [`FrcCode`] — the Fractional Repetition Code: workers are grouped,
//!   every group member returns the same group gradient, and the PS takes
//!   a per-group majority. Exact for ANY placement of `q ≤ (r−1)/2`
//!   Byzantines (even omniscient ones), because no group can contain more
//!   than `q < r/2` of them.
//! * [`CyclicCode`] — the cyclic repetition code: worker `i` linearly
//!   encodes the gradients of files `i, …, i+r−1 (mod K)` with circulant
//!   coefficients whose generating polynomial vanishes on `2q` Fourier
//!   frequencies. The resulting code has `2q` real parity checks; the
//!   decoder localizes up to `q` corrupted rows by syndrome consistency
//!   (an exhaustive-search equivalent of the Fourier decoder in the
//!   paper) and then recovers the exact gradient sum.
//!
//! Both decoders return [`DracoError::TooManyAdversaries`] when
//! `r < 2q + 1` — the regime where DRACO is simply not applicable and
//! ByzShield keeps working (paper Section 5.3.1: "DRACO would fail in the
//! regime q > r′ while ByzShield still demonstrates strong robustness").

mod complex;
mod cyclic;
mod frc;

pub use complex::{clstsq, csolve, CMatrix, C64};
pub use cyclic::CyclicCode;
pub use frc::FrcCode;

use std::fmt;

/// Errors from DRACO encoding/decoding.
#[derive(Debug, Clone, PartialEq)]
pub enum DracoError {
    /// The replication factor cannot tolerate the declared adversary
    /// count: DRACO requires `r ≥ 2q + 1`.
    TooManyAdversaries { replication: usize, q: usize },
    /// Input shapes are inconsistent (wrong worker count or ragged
    /// gradient dimensions).
    ShapeMismatch { expected: usize, got: usize },
    /// The syndrome decoder could not find a consistent error support —
    /// the corruption exceeded the code's correction radius.
    DecodingFailed,
    /// Construction parameters are invalid.
    BadParameters(String),
}

impl fmt::Display for DracoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DracoError::TooManyAdversaries { replication, q } => write!(
                f,
                "DRACO needs r ≥ 2q + 1: r = {replication} cannot tolerate q = {q}"
            ),
            DracoError::ShapeMismatch { expected, got } => {
                write!(f, "shape mismatch: expected {expected}, got {got}")
            }
            DracoError::DecodingFailed => {
                write!(
                    f,
                    "no consistent error support within the correction radius"
                )
            }
            DracoError::BadParameters(msg) => write!(f, "bad parameters: {msg}"),
        }
    }
}

impl std::error::Error for DracoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = DracoError::TooManyAdversaries {
            replication: 3,
            q: 2,
        };
        assert!(e.to_string().contains("2q + 1"));
    }
}
