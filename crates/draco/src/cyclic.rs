//! The cyclic repetition gradient code with the Fourier syndrome decoder
//! (Raviv et al. 2018, Tandon et al. 2017).
//!
//! Worker `i` is assigned files `i, i+1, …, i+2q (mod K)` and returns the
//! single *complex* linear combination `y_i = Σ_t c_t · g_{(i+t) mod K}`,
//! where `c_0..c_{2q}` are the coefficients of
//!
//! ```text
//! p(x) = Π_{s=1}^{2q} (x − ω^{−s}),   ω = e^{2πi/K}.
//! ```
//!
//! Because `p` vanishes on `2q` *consecutive* Fourier frequencies, the
//! circulant encoding matrix `C` has the `2q` parity checks
//! `v_s[j] = ω^{sj}` (`s = 1..2q`), and — exactly as in Reed–Solomon
//! decoding — any `2q` columns of the check matrix form a nonsingular
//! (scaled) Vandermonde system, so the support of up to `q` corrupted
//! returns is uniquely identifiable from the syndrome. This is DRACO's
//! exact-recovery optimum: `r = 2q + 1` replicas tolerate `q` Byzantine
//! workers with NO error in the decoded gradient.
//!
//! Real gradients stay real on the wire: each complex return is encoded
//! as `2d` interleaved `(re, im)` floats, which is also the format an
//! adversary corrupts.

use crate::complex::{clstsq, CMatrix, C64};
use crate::DracoError;

/// The cyclic repetition code for `K` workers tolerating exactly `q`
/// Byzantine returns with replication `r = 2q + 1`.
#[derive(Debug, Clone, PartialEq)]
pub struct CyclicCode {
    num_workers: usize,
    q: usize,
    /// Coefficients of `p(x) = Π_{s=1..2q} (x − ω^{−s})`, degree 2q.
    coeffs: Vec<C64>,
    /// `p(1)` — the decoding normalizer (nonzero since 1 is not a root).
    p_one: C64,
}

impl CyclicCode {
    /// Creates the code.
    ///
    /// # Errors
    ///
    /// [`DracoError::BadParameters`] unless `2q + 1 ≤ K`.
    pub fn new(num_workers: usize, q: usize) -> Result<Self, DracoError> {
        let r = 2 * q + 1;
        if num_workers == 0 || r > num_workers {
            return Err(DracoError::BadParameters(format!(
                "replication 2q+1 = {r} exceeds worker count {num_workers}"
            )));
        }
        let omega = std::f64::consts::TAU / num_workers as f64;
        // p(x) = Π_{s=1..2q} (x − ω^{−s}), by convolution.
        let mut coeffs = vec![C64::ONE];
        for s in 1..=2 * q {
            let root = C64::cis(-omega * s as f64);
            let mut next = vec![C64::ZERO; coeffs.len() + 1];
            for (i, &a) in coeffs.iter().enumerate() {
                next[i] = next[i] - root * a; // constant-term contribution
                next[i + 1] = next[i + 1] + a; // x·a contribution
            }
            coeffs = next;
        }
        let p_one = coeffs.iter().fold(C64::ZERO, |acc, &c| acc + c);
        Ok(CyclicCode {
            num_workers,
            q,
            coeffs,
            p_one,
        })
    }

    /// Number of workers `K` (= number of files).
    pub fn num_workers(&self) -> usize {
        self.num_workers
    }

    /// Tolerated adversary count `q`.
    pub fn tolerance(&self) -> usize {
        self.q
    }

    /// Replication factor `r = 2q + 1` (files per worker).
    pub fn replication(&self) -> usize {
        2 * self.q + 1
    }

    /// Files assigned to a worker: `i, …, i+2q (mod K)`.
    pub fn files_of(&self, worker: usize) -> Vec<usize> {
        (0..self.replication())
            .map(|t| (worker + t) % self.num_workers)
            .collect()
    }

    /// The `K × K` complex circulant encoding matrix `C` with
    /// `C[i, (i+t) mod K] = c_t`.
    pub fn encoding_matrix(&self) -> CMatrix {
        let k = self.num_workers;
        let mut c = CMatrix::zeros(k, k);
        for i in 0..k {
            for (t, &coef) in self.coeffs.iter().enumerate() {
                c.set(i, (i + t) % k, coef);
            }
        }
        c
    }

    /// The `2q × K` parity-check matrix `H` with `H[s−1, j] = ω^{sj}`;
    /// satisfies `H·C = 0`.
    pub fn parity_checks(&self) -> CMatrix {
        let k = self.num_workers;
        let omega = std::f64::consts::TAU / k as f64;
        let mut h = CMatrix::zeros(2 * self.q, k);
        for s in 1..=2 * self.q {
            for j in 0..k {
                h.set(s - 1, j, C64::cis(omega * (s * j) as f64));
            }
        }
        h
    }

    /// Honest encoding: worker `i` returns the complex combination
    /// `Σ_t c_t · g_{(i+t) mod K}` serialized as `2d` interleaved
    /// `(re, im)` floats.
    ///
    /// # Errors
    ///
    /// [`DracoError::ShapeMismatch`] unless exactly `K` equal-length file
    /// gradients are supplied.
    pub fn encode(&self, file_gradients: &[Vec<f32>]) -> Result<Vec<Vec<f32>>, DracoError> {
        let k = self.num_workers;
        if file_gradients.len() != k {
            return Err(DracoError::ShapeMismatch {
                expected: k,
                got: file_gradients.len(),
            });
        }
        let d = file_gradients[0].len();
        for g in file_gradients {
            if g.len() != d {
                return Err(DracoError::ShapeMismatch {
                    expected: d,
                    got: g.len(),
                });
            }
        }
        Ok((0..k)
            .map(|i| {
                let mut y = vec![0.0f32; 2 * d];
                for (t, &coef) in self.coeffs.iter().enumerate() {
                    let g = &file_gradients[(i + t) % k];
                    for (j, &gv) in g.iter().enumerate() {
                        let gv = f64::from(gv);
                        y[2 * j] += (coef.re * gv) as f32;
                        y[2 * j + 1] += (coef.im * gv) as f32;
                    }
                }
                y
            })
            .collect())
    }

    /// Decodes the exact sum `Σ_i g_i` of all file gradients from the `K`
    /// returns (each `2d` interleaved floats), of which up to `q` may be
    /// arbitrarily corrupted.
    ///
    /// # Errors
    ///
    /// * [`DracoError::ShapeMismatch`] on malformed input;
    /// * [`DracoError::DecodingFailed`] when no support of size ≤ q
    ///   explains the syndrome (corruption beyond the code radius).
    pub fn decode_sum(&self, returns: &[Vec<f32>]) -> Result<Vec<f32>, DracoError> {
        let k = self.num_workers;
        if returns.len() != k {
            return Err(DracoError::ShapeMismatch {
                expected: k,
                got: returns.len(),
            });
        }
        let dd = returns[0].len();
        if !dd.is_multiple_of(2) {
            return Err(DracoError::ShapeMismatch {
                expected: dd + 1,
                got: dd,
            });
        }
        let d = dd / 2;
        for y in returns {
            if y.len() != dd {
                return Err(DracoError::ShapeMismatch {
                    expected: dd,
                    got: y.len(),
                });
            }
        }

        // Y as a complex K × d matrix.
        let mut y = CMatrix::zeros(k, d);
        for (i, row) in returns.iter().enumerate() {
            for j in 0..d {
                y.set(
                    i,
                    j,
                    C64::new(f64::from(row[2 * j]), f64::from(row[2 * j + 1])),
                );
            }
        }

        let correct_and_sum = |y: &CMatrix, err: Option<(&[usize], &CMatrix)>| -> Vec<f32> {
            let mut out = vec![C64::ZERO; d];
            for i in 0..k {
                for (j, o) in out.iter_mut().enumerate() {
                    *o = *o + y.get(i, j);
                }
            }
            if let Some((support, e)) = err {
                for (row, _) in support.iter().enumerate() {
                    for (j, o) in out.iter_mut().enumerate() {
                        *o = *o - e.get(row, j);
                    }
                }
            }
            out.iter().map(|v| (*v / self.p_one).re as f32).collect()
        };

        if self.q == 0 {
            return Ok(correct_and_sum(&y, None));
        }

        let h = self.parity_checks();
        let syndrome = h.mul(&y);
        let scale = y.frobenius_norm().max(1.0);
        if syndrome.frobenius_norm() <= 1e-7 * scale {
            return Ok(correct_and_sum(&y, None));
        }

        // Enumerate supports of size q (RS uniqueness: any 2q columns of
        // H are independent, so at most one support of size ≤ q is
        // consistent with the syndrome).
        let mut support = vec![0usize; self.q];
        if self.search_support(&h, &syndrome, 0, 0, &mut support, scale) {
            let h_t = columns(&h, &support);
            let e = clstsq(&h_t, &syndrome).ok_or(DracoError::DecodingFailed)?;
            return Ok(correct_and_sum(&y, Some((&support, &e))));
        }
        Err(DracoError::DecodingFailed)
    }

    fn search_support(
        &self,
        h: &CMatrix,
        syndrome: &CMatrix,
        depth: usize,
        start: usize,
        support: &mut Vec<usize>,
        scale: f64,
    ) -> bool {
        if depth == self.q {
            let h_t = columns(h, support);
            let Some(e) = clstsq(&h_t, syndrome) else {
                return false;
            };
            let residual = h_t.mul(&e).sub(syndrome).frobenius_norm();
            return residual <= 1e-6 * scale;
        }
        for i in start..self.num_workers {
            support[depth] = i;
            if self.search_support(h, syndrome, depth + 1, i + 1, support, scale) {
                return true;
            }
        }
        false
    }
}

/// Column sub-matrix at the given indices.
fn columns(m: &CMatrix, idx: &[usize]) -> CMatrix {
    let mut out = CMatrix::zeros(m.rows(), idx.len());
    for (jj, &j) in idx.iter().enumerate() {
        for i in 0..m.rows() {
            out.set(i, jj, m.get(i, j));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file_gradients(k: usize, d: usize) -> Vec<Vec<f32>> {
        (0..k)
            .map(|i| {
                (0..d)
                    .map(|j| ((i * 7 + j * 3) % 13) as f32 - 6.0)
                    .collect()
            })
            .collect()
    }

    fn true_sum(grads: &[Vec<f32>]) -> Vec<f32> {
        let d = grads[0].len();
        let mut s = vec![0.0f32; d];
        for g in grads {
            for (sv, gv) in s.iter_mut().zip(g) {
                *sv += gv;
            }
        }
        s
    }

    #[test]
    fn construction_and_support() {
        let code = CyclicCode::new(15, 3).unwrap();
        assert_eq!(code.replication(), 7);
        assert_eq!(code.files_of(13), vec![13, 14, 0, 1, 2, 3, 4]);
        assert!(CyclicCode::new(5, 3).is_err()); // r = 7 > K = 5
    }

    #[test]
    fn parity_checks_annihilate_code() {
        for (k, q) in [(15usize, 2usize), (15, 3), (10, 1), (12, 2)] {
            let code = CyclicCode::new(k, q).unwrap();
            let h = code.parity_checks();
            let c = code.encoding_matrix();
            let prod = h.mul(&c);
            assert!(
                prod.frobenius_norm() < 1e-8 * c.frobenius_norm(),
                "H·C != 0 for (K, q) = ({k}, {q})"
            );
        }
    }

    #[test]
    fn clean_decoding_recovers_exact_sum() {
        let code = CyclicCode::new(15, 2).unwrap();
        let grads = file_gradients(15, 4);
        let returns = code.encode(&grads).unwrap();
        let sum = code.decode_sum(&returns).unwrap();
        for (a, b) in sum.iter().zip(true_sum(&grads)) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn corrupted_decoding_recovers_exact_sum() {
        let code = CyclicCode::new(15, 2).unwrap();
        let grads = file_gradients(15, 4);
        let mut returns = code.encode(&grads).unwrap();
        // Two adversaries send garbage (in the complex wire format).
        returns[3] = vec![1e4, -1e4, 5e3, 0.0, 3.3, -2.0, 7.0, 8.0];
        returns[11] = vec![-777.0, 0.0, 1.0, 9e3, -4.0, 5.5, 6.1, -0.2];
        let sum = code.decode_sum(&returns).unwrap();
        for (a, b) in sum.iter().zip(true_sum(&grads)) {
            assert!((a - b).abs() < 0.5, "{a} vs {b}");
        }
    }

    #[test]
    fn single_corruption_with_q2_code_still_decodes() {
        let code = CyclicCode::new(12, 2).unwrap();
        let grads = file_gradients(12, 3);
        let mut returns = code.encode(&grads).unwrap();
        returns[5] = vec![4e3; 6];
        let sum = code.decode_sum(&returns).unwrap();
        for (a, b) in sum.iter().zip(true_sum(&grads)) {
            assert!((a - b).abs() < 0.5, "{a} vs {b}");
        }
    }

    #[test]
    fn zeroed_return_is_corrected() {
        // The regression that motivated the complex construction: a
        // zeroed-out return must be located and cancelled exactly.
        let code = CyclicCode::new(12, 2).unwrap();
        let grads = file_gradients(12, 3);
        let mut returns = code.encode(&grads).unwrap();
        returns[8] = vec![0.0; 6];
        let sum = code.decode_sum(&returns).unwrap();
        for (a, b) in sum.iter().zip(true_sum(&grads)) {
            assert!((a - b).abs() < 0.5, "{a} vs {b}");
        }
    }

    #[test]
    fn over_radius_corruption_detected() {
        let code = CyclicCode::new(15, 2).unwrap();
        let grads = file_gradients(15, 4);
        let mut returns = code.encode(&grads).unwrap();
        returns[1] = vec![1e5; 8];
        returns[6] = vec![-2e5; 8];
        returns[9] = vec![3e5; 8];
        assert_eq!(
            code.decode_sum(&returns).unwrap_err(),
            DracoError::DecodingFailed
        );
    }

    #[test]
    fn q_zero_code_is_plain_sum() {
        let code = CyclicCode::new(8, 0).unwrap();
        assert_eq!(code.replication(), 1);
        let grads = file_gradients(8, 2);
        let returns = code.encode(&grads).unwrap();
        let sum = code.decode_sum(&returns).unwrap();
        for (a, b) in sum.iter().zip(true_sum(&grads)) {
            assert!((a - b).abs() < 1e-4);
        }
    }
}
