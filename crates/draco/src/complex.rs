//! Minimal complex arithmetic for the Fourier decoder: `C64` scalars and
//! the two dense solves the syndrome decoder needs.

use std::ops::{Add, Div, Mul, Neg, Sub};

/// A complex number over `f64`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// Builds from parts.
    pub const fn new(re: f64, im: f64) -> Self {
        C64 { re, im }
    }

    /// Zero.
    pub const ZERO: C64 = C64::new(0.0, 0.0);
    /// One.
    pub const ONE: C64 = C64::new(1.0, 0.0);

    /// `e^{iθ}`.
    pub fn cis(theta: f64) -> Self {
        C64::new(theta.cos(), theta.sin())
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        C64::new(self.re, -self.im)
    }

    /// Modulus.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared modulus.
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }
}

impl Add for C64 {
    type Output = C64;
    fn add(self, o: C64) -> C64 {
        C64::new(self.re + o.re, self.im + o.im)
    }
}

impl Sub for C64 {
    type Output = C64;
    fn sub(self, o: C64) -> C64 {
        C64::new(self.re - o.re, self.im - o.im)
    }
}

impl Mul for C64 {
    type Output = C64;
    fn mul(self, o: C64) -> C64 {
        C64::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl Div for C64 {
    type Output = C64;
    fn div(self, o: C64) -> C64 {
        let d = o.norm_sq();
        C64::new(
            (self.re * o.re + self.im * o.im) / d,
            (self.im * o.re - self.re * o.im) / d,
        )
    }
}

impl Neg for C64 {
    type Output = C64;
    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}

/// Dense row-major complex matrix (just enough for the decoder).
#[derive(Debug, Clone, PartialEq)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<C64>,
}

impl CMatrix {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CMatrix {
            rows,
            cols,
            data: vec![C64::ZERO; rows * cols],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Entry accessor.
    pub fn get(&self, r: usize, c: usize) -> C64 {
        self.data[r * self.cols + c]
    }

    /// Entry mutator.
    pub fn set(&mut self, r: usize, c: usize, v: C64) {
        self.data[r * self.cols + c] = v;
    }

    /// `selfᴴ · other` (conjugate-transpose product).
    pub fn hermitian_mul(&self, other: &CMatrix) -> CMatrix {
        assert_eq!(self.rows, other.rows, "hermitian_mul shape mismatch");
        let mut out = CMatrix::zeros(self.cols, other.cols);
        for i in 0..self.cols {
            for j in 0..other.cols {
                let mut acc = C64::ZERO;
                for k in 0..self.rows {
                    acc = acc + self.get(k, i).conj() * other.get(k, j);
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    /// Plain product `self · other`.
    pub fn mul(&self, other: &CMatrix) -> CMatrix {
        assert_eq!(self.cols, other.rows, "mul shape mismatch");
        let mut out = CMatrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a.abs() == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out.set(i, j, out.get(i, j) + a * other.get(k, j));
                }
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v.norm_sq()).sum::<f64>().sqrt()
    }

    /// Elementwise difference.
    pub fn sub(&self, other: &CMatrix) -> CMatrix {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        let mut out = self.clone();
        for (a, b) in out.data.iter_mut().zip(&other.data) {
            *a = *a - *b;
        }
        out
    }
}

/// Solves the square complex system `A·X = B` by Gaussian elimination with
/// partial (modulus) pivoting. Returns `None` when singular.
pub fn csolve(a: &CMatrix, b: &CMatrix) -> Option<CMatrix> {
    let n = a.rows();
    assert_eq!(a.cols(), n, "csolve needs a square matrix");
    assert_eq!(b.rows(), n, "csolve rhs shape mismatch");
    let mut aug = a.clone();
    let mut rhs = b.clone();
    let m = rhs.cols();
    for col in 0..n {
        let pivot_row = (col..n).max_by(|&i, &j| {
            aug.get(i, col)
                .abs()
                .partial_cmp(&aug.get(j, col).abs())
                .expect("finite moduli")
        })?;
        if aug.get(pivot_row, col).abs() < 1e-12 {
            return None;
        }
        if pivot_row != col {
            for j in 0..n {
                let tmp = aug.get(col, j);
                aug.set(col, j, aug.get(pivot_row, j));
                aug.set(pivot_row, j, tmp);
            }
            for j in 0..m {
                let tmp = rhs.get(col, j);
                rhs.set(col, j, rhs.get(pivot_row, j));
                rhs.set(pivot_row, j, tmp);
            }
        }
        for i in (col + 1)..n {
            let factor = aug.get(i, col) / aug.get(col, col);
            if factor.abs() == 0.0 {
                continue;
            }
            for j in col..n {
                aug.set(i, j, aug.get(i, j) - factor * aug.get(col, j));
            }
            for j in 0..m {
                rhs.set(i, j, rhs.get(i, j) - factor * rhs.get(col, j));
            }
        }
    }
    let mut x = CMatrix::zeros(n, m);
    for j in 0..m {
        for i in (0..n).rev() {
            let mut acc = rhs.get(i, j);
            for k in (i + 1)..n {
                acc = acc - aug.get(i, k) * x.get(k, j);
            }
            x.set(i, j, acc / aug.get(i, i));
        }
    }
    Some(x)
}

/// Complex least squares via the normal equations `AᴴA·X = AᴴB`.
pub fn clstsq(a: &CMatrix, b: &CMatrix) -> Option<CMatrix> {
    let aha = a.hermitian_mul(a);
    let ahb = a.hermitian_mul(b);
    csolve(&aha, &ahb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_arithmetic() {
        let i = C64::new(0.0, 1.0);
        assert_eq!(i * i, C64::new(-1.0, 0.0));
        let z = C64::new(3.0, 4.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.conj(), C64::new(3.0, -4.0));
        let w = z / z;
        assert!((w.re - 1.0).abs() < 1e-12 && w.im.abs() < 1e-12);
        let c = C64::cis(std::f64::consts::PI / 2.0);
        assert!(c.re.abs() < 1e-12 && (c.im - 1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_known_complex_system() {
        // (1+i)·x = 2i  →  x = 2i/(1+i) = 1 + i.
        let mut a = CMatrix::zeros(1, 1);
        a.set(0, 0, C64::new(1.0, 1.0));
        let mut b = CMatrix::zeros(1, 1);
        b.set(0, 0, C64::new(0.0, 2.0));
        let x = csolve(&a, &b).unwrap();
        assert!((x.get(0, 0).re - 1.0).abs() < 1e-12);
        assert!((x.get(0, 0).im - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lstsq_consistent_system() {
        // Overdetermined consistent: x = (2, i·3)… single unknown twice.
        let mut a = CMatrix::zeros(2, 1);
        a.set(0, 0, C64::ONE);
        a.set(1, 0, C64::new(0.0, 1.0));
        let mut b = CMatrix::zeros(2, 1);
        b.set(0, 0, C64::new(2.0, 0.0));
        b.set(1, 0, C64::new(0.0, 2.0));
        let x = clstsq(&a, &b).unwrap();
        assert!((x.get(0, 0).re - 2.0).abs() < 1e-10);
        assert!(x.get(0, 0).im.abs() < 1e-10);
    }

    #[test]
    fn singular_detected() {
        let a = CMatrix::zeros(2, 2);
        let b = CMatrix::zeros(2, 1);
        assert!(csolve(&a, &b).is_none());
    }
}
