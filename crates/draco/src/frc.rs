//! DRACO's Fractional Repetition Code with per-group majority decoding.

use crate::DracoError;
use byz_aggregate::majority_vote;

/// The FRC gradient code: `K` workers in `K/r` groups; every member of
/// group `g` computes and returns the same group gradient; the PS decodes
/// each group by majority and sums the group results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrcCode {
    num_workers: usize,
    replication: usize,
}

impl FrcCode {
    /// Creates the code.
    ///
    /// # Errors
    ///
    /// [`DracoError::BadParameters`] unless `r` is odd and divides `K`.
    pub fn new(num_workers: usize, replication: usize) -> Result<Self, DracoError> {
        if replication == 0 || !num_workers.is_multiple_of(replication) {
            return Err(DracoError::BadParameters(format!(
                "replication {replication} must divide worker count {num_workers}"
            )));
        }
        if replication.is_multiple_of(2) {
            return Err(DracoError::BadParameters(
                "replication must be odd for majority decoding".into(),
            ));
        }
        Ok(FrcCode {
            num_workers,
            replication,
        })
    }

    /// Number of groups (= number of distinct group gradients).
    pub fn num_groups(&self) -> usize {
        self.num_workers / self.replication
    }

    /// Group of a worker.
    pub fn group_of(&self, worker: usize) -> usize {
        worker / self.replication
    }

    /// Maximum `q` this code corrects exactly: `(r − 1)/2`.
    pub fn max_tolerable(&self) -> usize {
        (self.replication - 1) / 2
    }

    /// Honest worker returns: every member of group `g` returns
    /// `group_gradients[g]` verbatim (the encoding is plain repetition).
    ///
    /// # Errors
    ///
    /// [`DracoError::ShapeMismatch`] on a wrong group count.
    pub fn encode(&self, group_gradients: &[Vec<f32>]) -> Result<Vec<Vec<f32>>, DracoError> {
        if group_gradients.len() != self.num_groups() {
            return Err(DracoError::ShapeMismatch {
                expected: self.num_groups(),
                got: group_gradients.len(),
            });
        }
        Ok((0..self.num_workers)
            .map(|w| group_gradients[self.group_of(w)].clone())
            .collect())
    }

    /// Decodes the sum of group gradients from the `K` worker returns,
    /// exactly, provided at most `q ≤ (r−1)/2` returns are corrupted.
    ///
    /// # Errors
    ///
    /// * [`DracoError::TooManyAdversaries`] if `q > (r−1)/2` — the
    ///   information-theoretic bound;
    /// * [`DracoError::ShapeMismatch`] on malformed input.
    pub fn decode(&self, returns: &[Vec<f32>], q: usize) -> Result<Vec<f32>, DracoError> {
        if returns.len() != self.num_workers {
            return Err(DracoError::ShapeMismatch {
                expected: self.num_workers,
                got: returns.len(),
            });
        }
        if q > self.max_tolerable() {
            return Err(DracoError::TooManyAdversaries {
                replication: self.replication,
                q,
            });
        }
        let d = returns[0].len();
        let mut sum = vec![0.0f32; d];
        for g in 0..self.num_groups() {
            let group_returns: Vec<Vec<f32>> = (0..self.replication)
                .map(|j| returns[g * self.replication + j].clone())
                .collect();
            let outcome = majority_vote(&group_returns).map_err(|_| DracoError::DecodingFailed)?;
            if outcome.value.len() != d {
                return Err(DracoError::ShapeMismatch {
                    expected: d,
                    got: outcome.value.len(),
                });
            }
            for (s, v) in sum.iter_mut().zip(&outcome.value) {
                *s += v;
            }
        }
        Ok(sum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_recovery_within_bound() {
        // K = 15, r = 5: tolerates q = 2 anywhere — even both in one group.
        let code = FrcCode::new(15, 5).unwrap();
        assert_eq!(code.num_groups(), 3);
        assert_eq!(code.max_tolerable(), 2);
        let groups = vec![vec![1.0f32, 2.0], vec![10.0, 20.0], vec![100.0, 200.0]];
        let mut returns = code.encode(&groups).unwrap();
        // Corrupt two workers of group 0 (the omniscient worst case).
        returns[0] = vec![-9e9, 9e9];
        returns[1] = vec![-9e9, 9e9];
        let sum = code.decode(&returns, 2).unwrap();
        assert_eq!(sum, vec![111.0, 222.0]);
    }

    #[test]
    fn bound_violation_rejected() {
        let code = FrcCode::new(15, 3).unwrap();
        // r = 3 tolerates only q = 1; q = 2 is over the radius.
        assert_eq!(
            code.decode(&vec![vec![0.0]; 15], 2).unwrap_err(),
            DracoError::TooManyAdversaries {
                replication: 3,
                q: 2
            }
        );
    }

    #[test]
    fn over_radius_corruption_actually_breaks_decoding() {
        // Demonstrate WHY the bound exists: 2 colluders in one r = 3
        // group flip its majority and the decoded sum is wrong.
        let code = FrcCode::new(9, 3).unwrap();
        let groups = vec![vec![1.0f32], vec![2.0], vec![3.0]];
        let mut returns = code.encode(&groups).unwrap();
        returns[0] = vec![50.0];
        returns[1] = vec![50.0];
        // The decoder (told q = 1, within bounds) is silently wrong —
        // exactly the fragility ByzShield's analysis targets.
        let sum = code.decode(&returns, 1).unwrap();
        assert_ne!(sum, vec![6.0]);
        assert_eq!(sum, vec![55.0]);
    }

    #[test]
    fn bad_parameters() {
        assert!(FrcCode::new(10, 3).is_err());
        assert!(FrcCode::new(8, 4).is_err());
        assert!(FrcCode::new(9, 0).is_err());
    }

    #[test]
    fn encode_shape_checked() {
        let code = FrcCode::new(9, 3).unwrap();
        assert!(matches!(
            code.encode(&[vec![0.0]]),
            Err(DracoError::ShapeMismatch {
                expected: 3,
                got: 1
            })
        ));
    }
}
