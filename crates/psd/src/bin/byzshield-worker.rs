//! One worker process of a socket deployment.
//!
//! ```text
//! byzshield-worker connect=127.0.0.1:7001 worker=3 id=1 l=5 r=3 iters=10 …
//! ```
//!
//! The spec tokens (everything except `connect=` and `worker=`) must
//! match the ones the PS was launched with for this job id — worker and
//! PS derive the assignment, dataset and initial parameters from the
//! spec rather than exchanging them. The process connects, handshakes
//! into its `(job, worker)` slot, serves gradient rounds until the PS
//! sends the shutdown frame, and transparently reconnects (with a small
//! retry budget) if the connection drops mid-run.

use byz_psd::{DeploySpec, SpecError};
use byz_wire::{run_tcp_joiner, run_tcp_worker};

const USAGE: &str = "usage: byzshield-worker connect=ADDR worker=N <key=value>...";

fn main() {
    if let Err(e) = run() {
        eprintln!("byzshield-worker: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return Ok(());
    }

    let mut connect = None;
    let mut worker = None;
    let mut spec_tokens = Vec::new();
    for token in args {
        if let Some(addr) = token.strip_prefix("connect=") {
            connect = Some(addr.to_string());
        } else if let Some(id) = token.strip_prefix("worker=") {
            worker = Some(
                id.parse::<usize>()
                    .map_err(|_| SpecError(format!("worker={id} is not a number")))?,
            );
        } else {
            spec_tokens.push(token);
        }
    }
    let connect = connect.ok_or(SpecError(format!("connect= is required\n{USAGE}")))?;
    let worker = worker.ok_or(SpecError(format!("worker= is required\n{USAGE}")))?;

    let spec = DeploySpec::parse(&spec_tokens)?;
    let worker_spec = spec.worker_spec(worker)?;
    if spec.is_joiner(worker) {
        // A scheduled joiner enters the live job through the join
        // handshake: the PS ships it the current round, the current
        // model and its (possibly repaired) file set, so the slot can
        // be filled mid-run without restarting the deployment.
        println!(
            "worker {worker} join-handshaking into live job {} at {connect}",
            spec.job_id,
        );
        run_tcp_joiner(connect.parse()?, &worker_spec)?;
    } else {
        println!(
            "worker {worker} joining job {} at {connect} ({} of {} files)",
            spec.job_id,
            worker_spec.assignment.load(),
            worker_spec.assignment.num_files(),
        );
        run_tcp_worker(connect.parse()?, &worker_spec)?;
    }
    println!("worker {worker}: job {} complete", spec.job_id);
    Ok(())
}
