//! The standalone multi-job parameter server.
//!
//! ```text
//! byzshield-ps listen=127.0.0.1:7001 [ready-secs=30] \
//!     job id=1 l=5 r=3 iters=10 byzantine=0,5 reputation=on \
//!     job id=2 seed=99 mode=streaming
//! ```
//!
//! Every token after a `job` marker describes that job (see
//! [`DeploySpec`] for the key set); tokens before the first `job` are
//! server-global. The server binds one port, serves every job
//! concurrently (connections are routed by the `id` each worker names in
//! its handshake), and prints a per-job summary when all jobs finish.

use byz_cluster::PhaseTimings;
use byz_psd::{DeploySpec, SpecError};
use byz_wire::{JobSpec, PsServer};
use std::time::Duration;

const USAGE: &str =
    "usage: byzshield-ps [listen=ADDR] [ready-secs=N] job <key=value>... [job <key=value>...]";

fn main() {
    if let Err(e) = run() {
        eprintln!("byzshield-ps: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return Ok(());
    }

    let mut listen = String::from("127.0.0.1:7001");
    let mut ready_secs = 30u64;
    let mut job_tokens: Vec<Vec<String>> = Vec::new();
    for token in args {
        if token == "job" {
            job_tokens.push(Vec::new());
        } else if let Some(current) = job_tokens.last_mut() {
            current.push(token);
        } else if let Some(addr) = token.strip_prefix("listen=") {
            listen = addr.to_string();
        } else if let Some(secs) = token.strip_prefix("ready-secs=") {
            ready_secs = secs
                .parse()
                .map_err(|_| SpecError(format!("ready-secs={secs} is not a number")))?;
        } else {
            return Err(SpecError(format!("unexpected token `{token}` before first job")).into());
        }
    }
    if job_tokens.is_empty() {
        return Err(SpecError(format!("no jobs given\n{USAGE}")).into());
    }

    let mut jobs: Vec<JobSpec> = Vec::with_capacity(job_tokens.len());
    for tokens in &job_tokens {
        let spec = DeploySpec::parse(tokens)?;
        let job = spec.job_spec()?;
        println!(
            "job {}: K={} workers, {} files, {} rounds, {:?}/{:?}, byzantine={:?}",
            job.job_id,
            spec.num_workers(),
            job.assignment.num_files(),
            spec.iterations,
            spec.wire,
            spec.mode,
            spec.byzantine,
        );
        jobs.push(job);
    }

    let server = PsServer::bind(listen.parse()?)?;
    println!(
        "listening on {} — waiting up to {ready_secs}s for all workers to join",
        server.local_addr()?
    );
    let results = server.serve(jobs, Duration::from_secs(ready_secs))?;

    for result in results {
        let rounds = result.run.summaries.len();
        let missing: usize = result.run.summaries.iter().map(|s| s.missing_votes).sum();
        let deferred: usize = result.run.summaries.iter().map(|s| s.deferred_files).sum();
        let folded: usize = result.run.summaries.iter().map(|s| s.stale_folded).sum();
        let quarantined = result
            .run
            .summaries
            .last()
            .map(|s| s.quarantined_workers.clone())
            .unwrap_or_default();
        println!(
            "job {} done: {rounds} rounds, {missing} missing replica votes, \
             quarantined={quarantined:?}, params fingerprint {:#018x}",
            result.job_id,
            fingerprint(&result.run.params),
        );
        if deferred > 0 || folded > 0 {
            println!(
                "job {}   staleness: {deferred} file votes deferred, {folded} \
                 stale winners folded",
                result.job_id,
            );
        }
        // Phase timings are wall-clock (nondeterministic, excluded from
        // bit-identity checks) but they are the pipeline's observable:
        // overlap ×1.0 means phases ran back-to-back, above 1 means the
        // round hid vote/wire work inside the collection window.
        let agg = result
            .run
            .summaries
            .iter()
            .fold(PhaseTimings::default(), |acc, s| PhaseTimings {
                compute_ns: acc.compute_ns + s.timings.compute_ns,
                wire_ns: acc.wire_ns + s.timings.wire_ns,
                vote_ns: acc.vote_ns + s.timings.vote_ns,
                update_ns: acc.update_ns + s.timings.update_ns,
                round_ns: acc.round_ns + s.timings.round_ns,
            });
        println!(
            "job {}   phases: compute {}, wire {}, vote {}, update {} \
             over {} wall — overlap x{:.2}",
            result.job_id,
            ms(agg.compute_ns),
            ms(agg.wire_ns),
            ms(agg.vote_ns),
            ms(agg.update_ns),
            ms(agg.round_ns),
            agg.overlap_ratio(),
        );
    }
    Ok(())
}

/// Renders a nanosecond phase total as fractional milliseconds.
fn ms(ns: u64) -> String {
    format!("{:.1}ms", ns as f64 / 1e6)
}

/// An order-sensitive digest of the trained parameters, printed by both
/// binaries' docs as the quick way to eyeball run agreement.
fn fingerprint(params: &[f32]) -> u64 {
    params.iter().fold(0xcbf2_9ce4_8422_2325, |acc, p| {
        (acc ^ u64::from(p.to_bits())).wrapping_mul(0x0000_0100_0000_01b3)
    })
}
