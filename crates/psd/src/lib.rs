//! Shared deployment-spec plumbing for the `byzshield-ps` and
//! `byzshield-worker` binaries.
//!
//! A deployment is described by a flat list of `key=value` tokens — the
//! same tokens are passed verbatim to the PS and to every worker, which
//! is what keeps the processes consistent: assignment, dataset, initial
//! parameters and protocol configuration are all **derived
//! deterministically from the spec**, never shipped over the wire. A
//! worker that was launched with a different spec than its PS will
//! train a different model and lose its votes — visible immediately —
//! rather than silently half-work.
//!
//! ```text
//! byzshield-ps    listen=127.0.0.1:7001  job id=1 l=5 r=3 iters=10 …  job id=2 …
//! byzshield-worker connect=127.0.0.1:7001 worker=0  id=1 l=5 r=3 iters=10 …
//! ```

use byz_assign::{Assignment, MolsAssignment};
use byz_data::{Dataset, SyntheticConfig, SyntheticImages};
use byz_nn::{flatten_params, Mlp, Module};
use byz_reputation::ReputationConfig;
use byz_wire::{
    ChunkConfig, JobSpec, LocalAttack, RoundMode, ServerConfig, WireFormat, WorkerSpec,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// A malformed or inconsistent deployment spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(pub String);

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid deployment spec: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

fn err<T>(msg: impl Into<String>) -> Result<T, SpecError> {
    Err(SpecError(msg.into()))
}

/// Everything one job's processes must agree on, parsed from `key=value`
/// tokens. Every field has a default, so `byzshield-ps listen=… job` is
/// already a runnable (if boring) deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct DeploySpec {
    /// Job identity carried in the socket handshake (`id=`).
    pub job_id: u64,
    /// MOLS replication factor pair (`l=`, `r=`): `K = l·r` workers,
    /// `l²` files.
    pub l: usize,
    pub r: usize,
    /// Protocol rounds (`iters=`).
    pub iterations: usize,
    /// Batch size (`batch=`); must be divisible by `l²`.
    pub batch_size: usize,
    /// Learning rate (`lr=`).
    pub learning_rate: f32,
    /// Batch-sampling seed (`seed=`).
    pub seed: u64,
    /// Initial-parameter seed (`params-seed=`).
    pub params_seed: u64,
    /// Synthetic-dataset seed (`data-seed=`).
    pub data_seed: u64,
    /// Dataset shape (`classes=`, `hw=`, `samples=`).
    pub classes: usize,
    pub hw: usize,
    pub samples: usize,
    /// MLP layer widths (`dims=36x16x4`). First must equal `hw²`, last
    /// must equal `classes`.
    pub dims: Vec<usize>,
    /// Byzantine worker ids (`byzantine=0,5`).
    pub byzantine: Vec<usize>,
    /// What Byzantine workers send (`attack=constant:-100` or
    /// `attack=reversed:8`).
    pub attack: LocalAttack,
    /// Per-frame drop probability (`drops=0.05`) under fault seed
    /// (`fault-seed=`).
    pub drop_rate: f64,
    pub fault_seed: u64,
    /// Scheduled joins (`joins=3:4,7:6`): worker id → first round it is
    /// a member. A join-scheduled worker process enters through the join
    /// handshake and receives its model snapshot and file set from the
    /// PS instead of deriving them locally.
    pub joins: Vec<(usize, u64)>,
    /// Scheduled departures (`leaves=2:5`): worker id → first round it
    /// is gone. Membership, not a crash: the placement layer re-homes
    /// the departed worker's files.
    pub leaves: Vec<(usize, u64)>,
    /// Modelled stragglers (`straggle=3:4.0`): worker id → latency
    /// multiplier ≥ 1. Under bounded staleness the plan's straggle
    /// factors decide which workers arrive late and by how many rounds.
    pub stragglers: Vec<(usize, f64)>,
    /// Vote-audit reputation at the PS (`reputation=true`).
    pub reputation: bool,
    /// Wire format (`wire=batched` or `wire=chunked:256`).
    pub wire: WireFormat,
    /// Round scheduling (`mode=barrier`, `mode=streaming` or
    /// `mode=bounded:N` for bounded staleness with `max_staleness = N`).
    pub mode: RoundMode,
    /// PS receive window in milliseconds (`recv-ms=`).
    pub receive_timeout_ms: u64,
    /// Hard PS round deadline in milliseconds (`deadline-ms=`).
    pub round_deadline_ms: u64,
}

impl Default for DeploySpec {
    fn default() -> Self {
        DeploySpec {
            job_id: 1,
            l: 5,
            r: 3,
            iterations: 10,
            batch_size: 100,
            learning_rate: 0.05,
            seed: 0,
            params_seed: 2,
            data_seed: 5,
            classes: 4,
            hw: 6,
            samples: 400,
            dims: vec![36, 16, 4],
            byzantine: Vec::new(),
            attack: LocalAttack::Constant { value: -100.0 },
            drop_rate: 0.0,
            fault_seed: 7,
            joins: Vec::new(),
            leaves: Vec::new(),
            stragglers: Vec::new(),
            reputation: false,
            wire: WireFormat::Batched,
            mode: RoundMode::Barrier,
            receive_timeout_ms: 500,
            round_deadline_ms: 5000,
        }
    }
}

impl DeploySpec {
    /// Parses one job's `key=value` tokens. Unknown keys are errors —
    /// a typo'd knob silently falling back to its default is exactly the
    /// cross-process divergence this type exists to prevent.
    pub fn parse(tokens: &[String]) -> Result<DeploySpec, SpecError> {
        let mut spec = DeploySpec::default();
        let mut dims_given = false;
        for token in tokens {
            let Some((key, value)) = token.split_once('=') else {
                return err(format!("`{token}` is not a key=value token"));
            };
            match key {
                "id" => spec.job_id = parse_num(key, value)?,
                "l" => spec.l = parse_num(key, value)?,
                "r" => spec.r = parse_num(key, value)?,
                "iters" => spec.iterations = parse_num(key, value)?,
                "batch" => spec.batch_size = parse_num(key, value)?,
                "lr" => spec.learning_rate = parse_num(key, value)?,
                "seed" => spec.seed = parse_num(key, value)?,
                "params-seed" => spec.params_seed = parse_num(key, value)?,
                "data-seed" => spec.data_seed = parse_num(key, value)?,
                "classes" => spec.classes = parse_num(key, value)?,
                "hw" => spec.hw = parse_num(key, value)?,
                "samples" => spec.samples = parse_num(key, value)?,
                "dims" => {
                    spec.dims = parse_dims(value)?;
                    dims_given = true;
                }
                "byzantine" => spec.byzantine = parse_list(value)?,
                "attack" => spec.attack = parse_attack(value)?,
                "drops" => spec.drop_rate = parse_num(key, value)?,
                "fault-seed" => spec.fault_seed = parse_num(key, value)?,
                "joins" => spec.joins = parse_pairs(key, value)?,
                "leaves" => spec.leaves = parse_pairs(key, value)?,
                "straggle" => spec.stragglers = parse_pairs(key, value)?,
                "reputation" => spec.reputation = parse_bool(value)?,
                "wire" => spec.wire = parse_wire(value)?,
                "mode" => spec.mode = parse_mode(value)?,
                "recv-ms" => spec.receive_timeout_ms = parse_num(key, value)?,
                "deadline-ms" => spec.round_deadline_ms = parse_num(key, value)?,
                _ => return err(format!("unknown key `{key}`")),
            }
        }
        if !dims_given {
            spec.dims = vec![spec.hw * spec.hw, 16, spec.classes];
        }
        spec.validate()?;
        Ok(spec)
    }

    fn validate(&self) -> Result<(), SpecError> {
        let k = self.l * self.r;
        let f = self.l * self.l;
        if self.l == 0 || self.r == 0 {
            return err("l and r must be positive");
        }
        if self.iterations == 0 {
            return err("iters must be positive");
        }
        if self.batch_size == 0 || !self.batch_size.is_multiple_of(f) {
            return err(format!(
                "batch={} must be a positive multiple of l²={f}",
                self.batch_size
            ));
        }
        match self.dims.as_slice() {
            [first, .., last] => {
                if *first != self.hw * self.hw {
                    return err(format!(
                        "dims[0]={first} must equal hw²={}",
                        self.hw * self.hw
                    ));
                }
                if *last != self.classes {
                    return err(format!(
                        "dims[-1]={last} must equal classes={}",
                        self.classes
                    ));
                }
            }
            _ => return err("dims needs at least two layers"),
        }
        if let Some(&w) = self.byzantine.iter().find(|&&w| w >= k) {
            return err(format!("byzantine worker {w} outside cluster of K={k}"));
        }
        if !(0.0..1.0).contains(&self.drop_rate) {
            return err(format!("drops={} must be in [0, 1)", self.drop_rate));
        }
        // Socket deployments route churn through the job's fixed slot
        // table, so every scheduled member must name an in-range slot.
        for (kind, pairs) in [("joins", &self.joins), ("leaves", &self.leaves)] {
            if let Some(&(w, _)) = pairs.iter().find(|&&(w, _)| w >= k) {
                return err(format!("{kind} worker {w} outside cluster of K={k}"));
            }
        }
        // `contains` rejects NaN along with sub-unit multipliers.
        if let Some(&(w, m)) = self
            .stragglers
            .iter()
            .find(|&&(_, m)| !(1.0..).contains(&m))
        {
            return err(format!("straggle={w}:{m} needs a multiplier ≥ 1"));
        }
        Ok(())
    }

    /// Number of workers the spec's assignment needs.
    pub fn num_workers(&self) -> usize {
        self.l * self.r
    }

    /// The job's worker–file placement, derived from `(l, r)`.
    ///
    /// # Errors
    ///
    /// When `(l, r)` admits no MOLS construction.
    pub fn assignment(&self) -> Result<Assignment, SpecError> {
        match MolsAssignment::new(self.l as u64, self.r) {
            Ok(mols) => Ok(mols.build()),
            Err(e) => err(format!(
                "no MOLS assignment for l={}, r={}: {e}",
                self.l, self.r
            )),
        }
    }

    /// The job's dataset, regenerated from the spec's data seed — every
    /// process derives an identical replica.
    pub fn dataset(&self) -> Arc<Dataset> {
        let (train, _) = SyntheticImages::new(SyntheticConfig {
            num_classes: self.classes,
            channels: 1,
            hw: self.hw,
            train_samples: self.samples,
            test_samples: 1,
            noise: 0.4,
            max_shift: 1,
            seed: self.data_seed,
        })
        .generate();
        Arc::new(train)
    }

    /// The starting flat parameters, derived from the params seed.
    pub fn initial_params(&self) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(self.params_seed);
        flatten_params(&Mlp::new(&self.dims, &mut rng).parameters())
    }

    /// Whether `worker` enters the job through the join handshake (its
    /// first member round is scheduled) rather than the seed handshake.
    pub fn is_joiner(&self, worker: usize) -> bool {
        self.joins.iter().any(|&(w, _)| w == worker)
    }

    /// The protocol configuration both sides run.
    pub fn server_config(&self) -> ServerConfig {
        let mut faults = byz_cluster::FaultPlan::new(self.fault_seed);
        if self.drop_rate > 0.0 {
            faults = faults.drop_rate(self.drop_rate);
        }
        for &(w, round) in &self.joins {
            faults = faults.join_at(w, round);
        }
        for &(w, round) in &self.leaves {
            faults = faults.leave_at(w, round);
        }
        for &(w, multiplier) in &self.stragglers {
            faults = faults.straggle(w, multiplier);
        }
        ServerConfig {
            batch_size: self.batch_size,
            iterations: self.iterations,
            learning_rate: self.learning_rate,
            byzantine: self.byzantine.clone(),
            attack: self.attack,
            faults,
            wire: self.wire,
            mode: self.mode,
            receive_timeout: Duration::from_millis(self.receive_timeout_ms),
            round_deadline: Duration::from_millis(self.round_deadline_ms),
            seed: self.seed,
            reputation: self.reputation.then(ReputationConfig::default),
            ..ServerConfig::default()
        }
    }

    /// The PS-side job description.
    ///
    /// # Errors
    ///
    /// When the spec admits no assignment.
    pub fn job_spec(&self) -> Result<JobSpec, SpecError> {
        Ok(JobSpec {
            job_id: self.job_id,
            assignment: self.assignment()?,
            dataset: self.dataset(),
            model_dims: self.dims.clone(),
            initial_params: self.initial_params(),
            config: self.server_config(),
        })
    }

    /// The worker-side description for slot `worker`.
    ///
    /// # Errors
    ///
    /// When the spec admits no assignment or `worker` is out of range.
    pub fn worker_spec(&self, worker: usize) -> Result<WorkerSpec, SpecError> {
        if worker >= self.num_workers() {
            return err(format!(
                "worker={worker} outside cluster of K={}",
                self.num_workers()
            ));
        }
        Ok(WorkerSpec::new(
            self.job_id,
            worker,
            self.assignment()?,
            self.dataset(),
            self.dims.clone(),
            self.server_config(),
        ))
    }
}

fn parse_num<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, SpecError> {
    value
        .parse()
        .map_err(|_| SpecError(format!("{key}={value} is not a valid number")))
}

fn parse_bool(value: &str) -> Result<bool, SpecError> {
    match value {
        "true" | "on" | "1" => Ok(true),
        "false" | "off" | "0" => Ok(false),
        _ => err(format!("`{value}` is not a boolean")),
    }
}

fn parse_dims(value: &str) -> Result<Vec<usize>, SpecError> {
    value
        .split('x')
        .map(|part| {
            part.parse()
                .map_err(|_| SpecError(format!("dims segment `{part}` is not a number")))
        })
        .collect()
}

/// Parses `w:v,w:v,…` pairs — worker id to a per-worker value (a round
/// for `joins=`/`leaves=`, a latency multiplier for `straggle=`).
fn parse_pairs<T: std::str::FromStr>(key: &str, value: &str) -> Result<Vec<(usize, T)>, SpecError> {
    if value.is_empty() {
        return Ok(Vec::new());
    }
    value
        .split(',')
        .map(|pair| {
            let Some((worker, v)) = pair.split_once(':') else {
                return err(format!("{key} entry `{pair}` is not worker:value"));
            };
            Ok((parse_num(key, worker)?, parse_num(key, v)?))
        })
        .collect()
}

fn parse_list(value: &str) -> Result<Vec<usize>, SpecError> {
    if value.is_empty() {
        return Ok(Vec::new());
    }
    value
        .split(',')
        .map(|part| {
            part.parse()
                .map_err(|_| SpecError(format!("byzantine id `{part}` is not a number")))
        })
        .collect()
}

fn parse_attack(value: &str) -> Result<LocalAttack, SpecError> {
    match value.split_once(':') {
        Some(("constant", v)) => Ok(LocalAttack::Constant {
            value: parse_num("attack", v)?,
        }),
        Some(("reversed", m)) => Ok(LocalAttack::ReversedGradient {
            magnitude: parse_num("attack", m)?,
        }),
        _ => err(format!(
            "attack=`{value}` (expected constant:<v> or reversed:<m>)"
        )),
    }
}

fn parse_wire(value: &str) -> Result<WireFormat, SpecError> {
    match value {
        "batched" => Ok(WireFormat::Batched),
        other => match other.split_once(':') {
            Some(("chunked", n)) => Ok(WireFormat::Chunked(ChunkConfig::dense(parse_num(
                "wire", n,
            )?))),
            _ => err(format!(
                "wire=`{value}` (expected batched or chunked:<coords>)"
            )),
        },
    }
}

fn parse_mode(value: &str) -> Result<RoundMode, SpecError> {
    match value {
        "barrier" => Ok(RoundMode::Barrier),
        "streaming" => Ok(RoundMode::Streaming),
        other => match other.split_once(':') {
            Some(("bounded", s)) => Ok(RoundMode::BoundedStaleness {
                max_staleness: parse_num("mode", s)?,
            }),
            _ => err(format!(
                "mode=`{value}` (expected barrier, streaming or bounded:<s>)"
            )),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn defaults_round_trip() {
        let spec = DeploySpec::parse(&[]).unwrap();
        assert_eq!(spec, DeploySpec::default());
        assert_eq!(spec.num_workers(), 15);
        assert_eq!(spec.assignment().unwrap().num_files(), 25);
    }

    #[test]
    fn full_spec_parses() {
        let spec = DeploySpec::parse(&toks(
            "id=9 l=4 r=3 iters=6 batch=96 lr=0.1 seed=8 byzantine=1,7 \
             attack=reversed:4 wire=chunked:128 mode=streaming reputation=on \
             recv-ms=250 deadline-ms=2000 drops=0.05 dims=36x8x4",
        ))
        .unwrap();
        assert_eq!(spec.job_id, 9);
        assert_eq!((spec.l, spec.r), (4, 3));
        assert_eq!(spec.byzantine, vec![1, 7]);
        assert_eq!(
            spec.attack,
            LocalAttack::ReversedGradient { magnitude: 4.0 }
        );
        assert_eq!(spec.mode, RoundMode::Streaming);
        assert!(matches!(spec.wire, WireFormat::Chunked(_)));
        assert!(spec.reputation);
        assert_eq!(spec.server_config().receive_timeout.as_millis(), 250);
    }

    #[test]
    fn churn_and_bounded_mode_parse() {
        let spec = DeploySpec::parse(&toks(
            "mode=bounded:2 joins=3:4,7:6 leaves=2:5 straggle=3:4.0,9:2.5",
        ))
        .unwrap();
        assert_eq!(spec.mode, RoundMode::BoundedStaleness { max_staleness: 2 });
        assert!(spec.is_joiner(3) && spec.is_joiner(7) && !spec.is_joiner(2));
        let faults = spec.server_config().faults;
        assert_eq!(faults.joins_at(3), Some(4));
        assert_eq!(faults.joins_at(7), Some(6));
        assert_eq!(faults.leaves_at(2), Some(5));
        assert!(faults.has_churn());
        assert_eq!(faults.straggle_factor(3), 4.0);
        assert_eq!(faults.straggle_factor(9), 2.5);
        assert_eq!(faults.straggle_factor(0), 1.0);
    }

    #[test]
    fn dims_default_tracks_shape() {
        let spec = DeploySpec::parse(&toks("hw=8 classes=5 batch=100 l=5 r=3")).unwrap();
        assert_eq!(spec.dims, vec![64, 16, 5]);
    }

    #[test]
    fn inconsistent_specs_are_rejected() {
        for bad in [
            "batch=90",           // not a multiple of l² = 25
            "dims=10x16x4",       // input ≠ hw²
            "dims=36x16x7",       // output ≠ classes
            "byzantine=99",       // outside K = 15
            "drops=1.5",          // not a probability
            "mystery=1",          // unknown key
            "attack=downgrade:2", // unknown attack
            "wire=pigeon",        // unknown wire format
            "iters",              // not key=value
            "mode=bounded",       // bounded needs :<s>
            "joins=99:2",         // joiner outside the slot table
            "leaves=15:3",        // leaver outside K = 15
            "joins=3-2",          // not worker:round
            "straggle=3:0.5",     // multiplier below 1
        ] {
            assert!(DeploySpec::parse(&toks(bad)).is_err(), "`{bad}` parsed");
        }
    }

    #[test]
    fn derived_artifacts_are_deterministic() {
        let a = DeploySpec::parse(&toks("data-seed=42 params-seed=3")).unwrap();
        let b = DeploySpec::parse(&toks("params-seed=3 data-seed=42")).unwrap();
        assert_eq!(a.initial_params(), b.initial_params());
        assert_eq!(a.dataset().len(), b.dataset().len());
        assert_eq!(
            a.job_spec().unwrap().initial_params,
            b.job_spec().unwrap().initial_params
        );
    }
}
