//! Per-iteration time modelling (paper Section 6.2 "Training Time" and
//! Figure 12).

use byz_assign::Assignment;
use std::time::Duration;

/// A calibrated cost model turning cluster geometry into the
/// computation / communication / aggregation split of Figure 12.
///
/// The paper's qualitative structure, which this model reproduces:
///
/// * **computation** — redundancy schemes process `r×` more samples per
///   worker than the baseline;
/// * **communication** — ByzShield uploads `l` gradients per worker per
///   iteration (one per file) where baseline and DETOX upload one, and the
///   PS broadcasts the model to all `K` workers in every scheme;
/// * **aggregation** — scales with the number of vectors the PS combines
///   and the aggregation rule's complexity.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Seconds for one worker to compute the gradient of a single sample.
    pub seconds_per_sample: f64,
    /// Bytes per model parameter on the wire (f32 = 4).
    pub bytes_per_param: f64,
    /// Model dimension `d`.
    pub model_dim: usize,
    /// Link bandwidth in bytes/second between the PS and one worker.
    pub bandwidth: f64,
    /// Per-message latency in seconds.
    pub latency: f64,
    /// Seconds for the PS to process one `f32` during aggregation.
    pub seconds_per_aggregated_value: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // Calibrated to c5.4xlarge-like workers on 10 Gb/s links: the
        // absolute values are illustrative; the figure-of-merit is the
        // relative split.
        CostModel {
            seconds_per_sample: 2.0e-4,
            bytes_per_param: 4.0,
            model_dim: 11_173_962, // ResNet-18 parameter count
            bandwidth: 1.25e9,
            latency: 5.0e-4,
            seconds_per_aggregated_value: 2.0e-9,
        }
    }
}

/// The modelled per-iteration time split.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationTimeEstimate {
    /// Worker gradient computation (slowest worker; synchronous barrier).
    pub computation: Duration,
    /// Model broadcast + gradient uploads.
    pub communication: Duration,
    /// PS-side voting + robust aggregation.
    pub aggregation: Duration,
}

impl IterationTimeEstimate {
    /// Total modelled iteration time.
    pub fn total(&self) -> Duration {
        self.computation + self.communication + self.aggregation
    }
}

impl CostModel {
    /// Models one iteration for a redundancy scheme with the given
    /// assignment, batch size `b`, and an aggregation pass over
    /// `aggregated_vectors` vectors of dimension `d` with cost factor
    /// `aggregation_ops_per_value` (e.g. ~1 for median-family rules,
    /// ~n for Krum-family rules whose cost is quadratic in the operands).
    pub fn estimate(
        &self,
        assignment: &Assignment,
        batch_size: usize,
        aggregated_vectors: usize,
        aggregation_ops_per_value: f64,
    ) -> IterationTimeEstimate {
        let r = assignment.replication() as f64;
        let l = assignment.load() as f64;
        let k = assignment.num_workers() as f64;

        // Each worker processes l files of (b·r/(f·r)) = b/f samples each;
        // with f files total, per-worker samples = l·b/f = b·r/K.
        let samples_per_worker = batch_size as f64 * r / k;
        let computation = samples_per_worker * self.seconds_per_sample;

        let model_bytes = self.model_dim as f64 * self.bytes_per_param;
        // Broadcast down (PS serializes K sends), l gradient uploads per
        // worker contending on the PS ingress link.
        let downlink = k * (self.latency + model_bytes / self.bandwidth);
        let uplink = k * l * (self.latency + model_bytes / self.bandwidth);
        let communication = downlink + uplink;

        // Majority vote touches every replica value once, then the robust
        // rule runs over `aggregated_vectors` vectors.
        let vote_values = k * l * self.model_dim as f64;
        let agg_values =
            aggregated_vectors as f64 * self.model_dim as f64 * aggregation_ops_per_value;
        let aggregation = (vote_values + agg_values) * self.seconds_per_aggregated_value;

        IterationTimeEstimate {
            computation: Duration::from_secs_f64(computation),
            communication: Duration::from_secs_f64(communication),
            aggregation: Duration::from_secs_f64(aggregation),
        }
    }

    /// Models one iteration of a *baseline* (no redundancy) scheme on `K`
    /// workers: one file per worker, one upload each.
    pub fn estimate_baseline(
        &self,
        num_workers: usize,
        batch_size: usize,
        aggregation_ops_per_value: f64,
    ) -> IterationTimeEstimate {
        let k = num_workers as f64;
        let computation = batch_size as f64 / k * self.seconds_per_sample;
        let model_bytes = self.model_dim as f64 * self.bytes_per_param;
        let communication = 2.0 * k * (self.latency + model_bytes / self.bandwidth);
        let aggregation = k
            * self.model_dim as f64
            * aggregation_ops_per_value
            * self.seconds_per_aggregated_value;
        IterationTimeEstimate {
            computation: Duration::from_secs_f64(computation),
            communication: Duration::from_secs_f64(communication),
            aggregation: Duration::from_secs_f64(aggregation),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use byz_assign::{FrcAssignment, RamanujanAssignment};

    #[test]
    fn byzshield_spends_more_than_baseline() {
        // Figure 12's ordering: baseline median < DETOX-MoM < ByzShield.
        let model = CostModel::default();
        let byzshield = RamanujanAssignment::new(5, 5).unwrap().build();
        let detox = FrcAssignment::new(25, 5).unwrap().build();

        let bs = model.estimate(&byzshield, 750, 25, 1.0);
        let dx = model.estimate(&detox, 750, 5, 1.0);
        let base = model.estimate_baseline(25, 750, 1.0);

        assert!(
            bs.total() > dx.total(),
            "ByzShield should cost more than DETOX"
        );
        assert!(
            dx.total() > base.total(),
            "DETOX should cost more than baseline"
        );
        // Redundant schemes compute r× the samples.
        assert!(bs.computation > base.computation);
        assert!((bs.computation.as_secs_f64() / base.computation.as_secs_f64() - 5.0).abs() < 0.01);
        // ByzShield's l uploads dominate its communication.
        assert!(bs.communication > dx.communication);
    }

    #[test]
    fn totals_add_up() {
        let model = CostModel::default();
        let est = model.estimate_baseline(10, 100, 1.0);
        assert_eq!(
            est.total(),
            est.computation + est.communication + est.aggregation
        );
    }

    #[test]
    fn quadratic_aggregation_costs_more() {
        let model = CostModel::default();
        let a = model.estimate_baseline(25, 750, 1.0);
        let b = model.estimate_baseline(25, 750, 25.0); // Krum-like
        assert!(b.aggregation > a.aggregation);
        assert_eq!(b.computation, a.computation);
    }
}
