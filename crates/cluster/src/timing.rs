//! Per-iteration time modelling (paper Section 6.2 "Training Time" and
//! Figure 12).

use crate::{ClusterError, FaultPlan};
use byz_assign::Assignment;
use std::time::Duration;

/// A calibrated cost model turning cluster geometry into the
/// computation / communication / aggregation split of Figure 12.
///
/// The paper's qualitative structure, which this model reproduces:
///
/// * **computation** — redundancy schemes process `r×` more samples per
///   worker than the baseline;
/// * **communication** — ByzShield uploads `l` gradients per worker per
///   iteration (one per file) where baseline and DETOX upload one, and the
///   PS broadcasts the model to all `K` workers in every scheme;
/// * **aggregation** — scales with the number of vectors the PS combines
///   and the aggregation rule's complexity.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Seconds for one worker to compute the gradient of a single sample.
    pub seconds_per_sample: f64,
    /// Bytes per model parameter on the wire (f32 = 4).
    pub bytes_per_param: f64,
    /// Model dimension `d`.
    pub model_dim: usize,
    /// Link bandwidth in bytes/second between the PS and one worker.
    pub bandwidth: f64,
    /// Per-message latency in seconds.
    pub latency: f64,
    /// Seconds for the PS to process one `f32` during aggregation.
    pub seconds_per_aggregated_value: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // Calibrated to c5.4xlarge-like workers on 10 Gb/s links: the
        // absolute values are illustrative; the figure-of-merit is the
        // relative split.
        CostModel {
            seconds_per_sample: 2.0e-4,
            bytes_per_param: 4.0,
            model_dim: 11_173_962, // ResNet-18 parameter count
            bandwidth: 1.25e9,
            latency: 5.0e-4,
            seconds_per_aggregated_value: 2.0e-9,
        }
    }
}

/// The modelled per-iteration time split.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationTimeEstimate {
    /// Worker gradient computation (slowest worker; synchronous barrier).
    pub computation: Duration,
    /// Model broadcast + gradient uploads.
    pub communication: Duration,
    /// PS-side voting + robust aggregation.
    pub aggregation: Duration,
    /// Retry backoff + retransmission time for files whose quorum
    /// collapsed (zero in fault-free iterations).
    pub retry: Duration,
}

impl IterationTimeEstimate {
    /// Total modelled iteration time.
    pub fn total(&self) -> Duration {
        self.computation + self.communication + self.aggregation + self.retry
    }
}

/// Measured wall-clock nanoseconds per round phase, as observed by the
/// parameter server.
///
/// In the barrier round mode the phases run back-to-back, so their sum is
/// close to the round wall time ([`PhaseTimings::overlap_ratio`] ≈ 1). In
/// the streaming mode votes run *inside* the collection window while
/// later frames are still in flight, so the phase sum exceeds the wall
/// time and the ratio rises above 1 — the ratio is the per-round
/// observable for how much work the pipeline hid.
///
/// Phase boundaries:
/// * `compute_ns` — model broadcast until the first gradient frame
///   arrives (worker compute plus straggler delay, as seen by the PS);
/// * `wire_ns` — first frame until the collection window closes
///   (includes any vote work done inline while waiting);
/// * `vote_ns` — CPU time spent in quorum votes and the canonical fold,
///   wherever it ran;
/// * `update_ns` — robust aggregation plus the SGD-momentum step;
/// * `round_ns` — broadcast until the round summary is sealed.
///
/// Wall-clock values: nondeterministic, excluded from any bit-identity
/// comparison.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    /// Broadcast → first gradient frame.
    pub compute_ns: u64,
    /// First gradient frame → collection window closed.
    pub wire_ns: u64,
    /// Total vote + canonical-fold CPU time.
    pub vote_ns: u64,
    /// Aggregation + model update time.
    pub update_ns: u64,
    /// Whole-round wall time.
    pub round_ns: u64,
}

impl PhaseTimings {
    /// Sum of the (possibly overlapping) phase durations.
    pub fn total_phase_ns(&self) -> u64 {
        self.compute_ns + self.wire_ns + self.vote_ns + self.update_ns
    }

    /// Phase-sum over wall time: ≈ 1 when phases run as strict barriers,
    /// > 1 when the pipeline overlaps them. 0 for an unmeasured round.
    pub fn overlap_ratio(&self) -> f64 {
        if self.round_ns == 0 {
            return 0.0;
        }
        self.total_phase_ns() as f64 / self.round_ns as f64
    }
}

/// Bounded-retry backoff policy for files whose quorum collapsed: the PS
/// re-requests the file's replicas from its surviving workers, waiting
/// `backoff_base · backoff_factor^(attempt−1)` before attempt `attempt`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Exponential backoff base delay (wait before the first retry).
    pub backoff_base: Duration,
    /// Backoff growth factor per further attempt (≥ 1).
    pub backoff_factor: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            backoff_base: Duration::from_millis(50),
            backoff_factor: 2.0,
        }
    }
}

impl RetryPolicy {
    /// The modelled wait before retry `attempt` (1-based). Attempt 0 is
    /// the original transmission and has no delay.
    pub fn delay(&self, attempt: u32) -> Duration {
        if attempt == 0 {
            return Duration::ZERO;
        }
        let factor = self.backoff_factor.max(1.0).powi(attempt as i32 - 1);
        Duration::from_secs_f64(self.backoff_base.as_secs_f64() * factor)
    }

    /// Total backoff spent running `waves` retry waves (attempts
    /// `1..=waves`).
    pub fn total_backoff(&self, waves: u32) -> Duration {
        (1..=waves).map(|a| self.delay(a)).sum()
    }
}

impl CostModel {
    /// Models one iteration for a redundancy scheme with the given
    /// assignment, batch size `b`, and an aggregation pass over
    /// `aggregated_vectors` vectors of dimension `d` with cost factor
    /// `aggregation_ops_per_value` (e.g. ~1 for median-family rules,
    /// ~n for Krum-family rules whose cost is quadratic in the operands).
    pub fn estimate(
        &self,
        assignment: &Assignment,
        batch_size: usize,
        aggregated_vectors: usize,
        aggregation_ops_per_value: f64,
    ) -> IterationTimeEstimate {
        let r = assignment.replication() as f64;
        let l = assignment.load() as f64;
        let k = assignment.num_workers() as f64;

        // Each worker processes l files of (b·r/(f·r)) = b/f samples each;
        // with f files total, per-worker samples = l·b/f = b·r/K.
        let samples_per_worker = batch_size as f64 * r / k;
        let computation = samples_per_worker * self.seconds_per_sample;

        let model_bytes = self.model_dim as f64 * self.bytes_per_param;
        // Broadcast down (PS serializes K sends), l gradient uploads per
        // worker contending on the PS ingress link.
        let downlink = k * (self.latency + model_bytes / self.bandwidth);
        let uplink = k * l * (self.latency + model_bytes / self.bandwidth);
        let communication = downlink + uplink;

        // Majority vote touches every replica value once, then the robust
        // rule runs over `aggregated_vectors` vectors.
        let vote_values = k * l * self.model_dim as f64;
        let agg_values =
            aggregated_vectors as f64 * self.model_dim as f64 * aggregation_ops_per_value;
        let aggregation = (vote_values + agg_values) * self.seconds_per_aggregated_value;

        IterationTimeEstimate {
            computation: Duration::from_secs_f64(computation),
            communication: Duration::from_secs_f64(communication),
            aggregation: Duration::from_secs_f64(aggregation),
            retry: Duration::ZERO,
        }
    }

    /// Models one iteration under a [`FaultPlan`]: the synchronous
    /// barrier stretches to the slowest *surviving* straggler, crashed
    /// workers upload nothing, dropped replicas shrink the expected
    /// upload volume, and `retry_waves`/`retried_files` account for the
    /// bounded-retry protocol (backoff waits plus retransmission of the
    /// retried files' gradients).
    ///
    /// # Errors
    ///
    /// [`ClusterError::NoSurvivingWorkers`] when the plan crashes every
    /// worker — there is no meaningful iteration time for a dead cluster,
    /// and the pre-fault code path's silent `0s` straggler estimate is
    /// exactly the failure mode this method exists to remove.
    #[allow(clippy::too_many_arguments)]
    pub fn estimate_faulty(
        &self,
        assignment: &Assignment,
        batch_size: usize,
        aggregated_vectors: usize,
        aggregation_ops_per_value: f64,
        plan: &FaultPlan,
        retry_waves: u32,
        retried_files: usize,
        policy: &RetryPolicy,
    ) -> Result<IterationTimeEstimate, ClusterError> {
        let base = self.estimate(
            assignment,
            batch_size,
            aggregated_vectors,
            aggregation_ops_per_value,
        );
        let k = assignment.num_workers();
        let survivors = plan.surviving_workers(k).len();
        let straggle = plan.max_surviving_straggle(k)?;

        let computation = base.computation.as_secs_f64() * straggle;

        // Broadcast still fans out to all K workers (the PS cannot know
        // who crashed before sending); uploads come only from survivors,
        // thinned by the expected drop rate.
        let model_bytes = self.model_dim as f64 * self.bytes_per_param;
        let per_frame = self.latency + model_bytes / self.bandwidth;
        let l = assignment.load() as f64;
        let downlink = k as f64 * per_frame;
        let uplink = survivors as f64 * l * per_frame * (1.0 - plan.replica_drop_rate());
        let communication = downlink + uplink;

        // Retries: each wave waits its backoff, then the retried files'
        // surviving replicas are retransmitted.
        let retransmit = retried_files as f64 * per_frame;
        let retry = policy.total_backoff(retry_waves).as_secs_f64() + retransmit;

        Ok(IterationTimeEstimate {
            computation: Duration::from_secs_f64(computation),
            communication: Duration::from_secs_f64(communication),
            aggregation: base.aggregation,
            retry: Duration::from_secs_f64(retry),
        })
    }

    /// Models one iteration of a *baseline* (no redundancy) scheme on `K`
    /// workers: one file per worker, one upload each.
    pub fn estimate_baseline(
        &self,
        num_workers: usize,
        batch_size: usize,
        aggregation_ops_per_value: f64,
    ) -> IterationTimeEstimate {
        let k = num_workers as f64;
        let computation = batch_size as f64 / k * self.seconds_per_sample;
        let model_bytes = self.model_dim as f64 * self.bytes_per_param;
        let communication = 2.0 * k * (self.latency + model_bytes / self.bandwidth);
        let aggregation = k
            * self.model_dim as f64
            * aggregation_ops_per_value
            * self.seconds_per_aggregated_value;
        IterationTimeEstimate {
            computation: Duration::from_secs_f64(computation),
            communication: Duration::from_secs_f64(communication),
            aggregation: Duration::from_secs_f64(aggregation),
            retry: Duration::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use byz_assign::{FrcAssignment, RamanujanAssignment};

    #[test]
    fn byzshield_spends_more_than_baseline() {
        // Figure 12's ordering: baseline median < DETOX-MoM < ByzShield.
        let model = CostModel::default();
        let byzshield = RamanujanAssignment::new(5, 5).unwrap().build();
        let detox = FrcAssignment::new(25, 5).unwrap().build();

        let bs = model.estimate(&byzshield, 750, 25, 1.0);
        let dx = model.estimate(&detox, 750, 5, 1.0);
        let base = model.estimate_baseline(25, 750, 1.0);

        assert!(
            bs.total() > dx.total(),
            "ByzShield should cost more than DETOX"
        );
        assert!(
            dx.total() > base.total(),
            "DETOX should cost more than baseline"
        );
        // Redundant schemes compute r× the samples.
        assert!(bs.computation > base.computation);
        assert!((bs.computation.as_secs_f64() / base.computation.as_secs_f64() - 5.0).abs() < 0.01);
        // ByzShield's l uploads dominate its communication.
        assert!(bs.communication > dx.communication);
    }

    #[test]
    fn totals_add_up() {
        let model = CostModel::default();
        let est = model.estimate_baseline(10, 100, 1.0);
        assert_eq!(
            est.total(),
            est.computation + est.communication + est.aggregation
        );
    }

    #[test]
    fn stragglers_stretch_the_barrier() {
        let model = CostModel::default();
        let assignment = RamanujanAssignment::new(5, 5).unwrap().build();
        let clean = model.estimate(&assignment, 750, 25, 1.0);
        let plan = FaultPlan::new(0).straggle(3, 4.0);
        let slow = model
            .estimate_faulty(
                &assignment,
                750,
                25,
                1.0,
                &plan,
                0,
                0,
                &RetryPolicy::default(),
            )
            .unwrap();
        assert!(
            (slow.computation.as_secs_f64() / clean.computation.as_secs_f64() - 4.0).abs() < 1e-9,
            "barrier must stretch by the straggler factor"
        );
        // A crashed straggler no longer holds the barrier.
        let crashed = model
            .estimate_faulty(
                &assignment,
                750,
                25,
                1.0,
                &plan.crash(3),
                0,
                0,
                &RetryPolicy::default(),
            )
            .unwrap();
        assert_eq!(crashed.computation, clean.computation);
        assert!(crashed.communication < clean.communication);
    }

    #[test]
    fn all_crashed_estimate_is_an_error() {
        let model = CostModel::default();
        let assignment = RamanujanAssignment::new(5, 5).unwrap().build();
        let k = assignment.num_workers();
        let plan = FaultPlan::new(0).crash_many(0..k);
        assert_eq!(
            model
                .estimate_faulty(
                    &assignment,
                    750,
                    25,
                    1.0,
                    &plan,
                    0,
                    0,
                    &RetryPolicy::default()
                )
                .unwrap_err(),
            ClusterError::NoSurvivingWorkers
        );
    }

    #[test]
    fn retry_backoff_is_exponential_and_accounted() {
        let policy = RetryPolicy {
            backoff_base: Duration::from_millis(100),
            backoff_factor: 2.0,
        };
        assert_eq!(policy.delay(0), Duration::ZERO);
        assert_eq!(policy.delay(1), Duration::from_millis(100));
        assert_eq!(policy.delay(2), Duration::from_millis(200));
        assert_eq!(policy.total_backoff(3), Duration::from_millis(700));

        let model = CostModel::default();
        let assignment = RamanujanAssignment::new(5, 5).unwrap().build();
        let plan = FaultPlan::new(1).drop_rate(0.1);
        let none = model
            .estimate_faulty(&assignment, 750, 25, 1.0, &plan, 0, 0, &policy)
            .unwrap();
        let some = model
            .estimate_faulty(&assignment, 750, 25, 1.0, &plan, 2, 4, &policy)
            .unwrap();
        assert_eq!(none.retry, Duration::ZERO);
        assert!(some.retry >= Duration::from_millis(300));
        assert!(some.total() > none.total());
    }

    #[test]
    fn overlap_ratio_reflects_hidden_work() {
        let barrier = PhaseTimings {
            compute_ns: 100,
            wire_ns: 50,
            vote_ns: 30,
            update_ns: 20,
            round_ns: 200,
        };
        assert!((barrier.overlap_ratio() - 1.0).abs() < 1e-12);
        // Streaming: votes ran inside the wire window, so the phase sum
        // exceeds the wall time.
        let streaming = PhaseTimings {
            round_ns: 170,
            ..barrier
        };
        assert!(streaming.overlap_ratio() > 1.0);
        assert_eq!(PhaseTimings::default().overlap_ratio(), 0.0);
        assert_eq!(barrier.total_phase_ns(), 200);
    }

    #[test]
    fn quadratic_aggregation_costs_more() {
        let model = CostModel::default();
        let a = model.estimate_baseline(25, 750, 1.0);
        let b = model.estimate_baseline(25, 750, 25.0); // Krum-like
        assert!(b.aggregation > a.aggregation);
        assert_eq!(b.computation, a.computation);
    }
}
