//! Round-scoped gradient arena: the zero-copy round hot path.
//!
//! The legacy gather ([`Cluster::compute_round_faulty`]) allocates one
//! `Vec<f32>` per replica per round — `K·l` heap allocations plus a
//! per-file `Vec<(usize, Vec<f32>)>` shuffle, every iteration. Profiles
//! (`BENCH_kernels.json`, `cluster_round` at 1.01× threaded) show the
//! round is dominated by exactly this, not by gradient math.
//!
//! A [`GradientArena`] replaces all of it with one flat `f32` slab per
//! worker, sized `load·d` and **reused across rounds without re-zeroing**
//! (every live slot is overwritten before it is read; crashed workers'
//! stale slots are never referenced). A replica is then just a
//! `(worker, slot)` pair and voting reads borrowed `&[f32]` views
//! straight out of the slabs — the per-round steady-state allocation
//! count drops to zero.
//!
//! Ownership rules (DESIGN.md §12):
//!
//! 1. the arena is borrowed mutably for the *fill* phase of a round and
//!    immutably by the returned [`ArenaRound`] for the read phase, so the
//!    borrow checker proves no vote can observe a half-written slab;
//! 2. [`ArenaRound`] must be dropped before the next round starts (the
//!    next `compute_round_arena` call needs the `&mut` back);
//! 3. slab contents persist across rounds — only shape changes
//!    (assignment or dimension) reallocate.

use crate::engine::{ComputedRound, ExecutionMode, WorkerCompute};
use crate::{Cluster, ClusterError, FaultPlan};
use std::time::{Duration, Instant};

/// Reusable per-worker gradient storage for the round hot path.
///
/// Create once ([`GradientArena::new`]), then pass `&mut` to
/// [`Cluster::compute_round_arena`] every round. The first round (or a
/// shape change) sizes the slabs; later rounds reuse them untouched.
#[derive(Debug, Default)]
pub struct GradientArena {
    /// Gradient dimension the slabs are currently shaped for.
    dim: usize,
    /// `slabs[w]` = flat `load_w · dim` buffer; slot `i` holds the
    /// gradient of `files_of(w)[i]` at `[i·dim, (i+1)·dim)`.
    slabs: Vec<Vec<f32>>,
    /// `slots[file]` = `(worker, slot)` pairs that arrived this round, in
    /// ascending worker order. Inner vectors are cleared (capacity kept),
    /// never reallocated in steady state.
    slots: Vec<Vec<(usize, usize)>>,
    /// Per-worker compute durations, overwritten (not re-zeroed) each
    /// round.
    worker_compute: Vec<Duration>,
    /// Per-worker participation flags, overwritten each round.
    participated: Vec<bool>,
}

impl GradientArena {
    /// An empty arena; the first round shapes it.
    pub fn new() -> Self {
        GradientArena::default()
    }

    /// Total `f32` capacity across all slabs (diagnostics).
    pub fn capacity(&self) -> usize {
        self.slabs.iter().map(Vec::len).sum()
    }

    /// Ensures the slabs match `(assignment shape, dim)`. Reshaping
    /// reallocates; a matching shape leaves slab contents untouched —
    /// deliberately *not* zeroed, stale data is unreachable through the
    /// round's slot lists.
    fn ensure_shape(&mut self, cluster: &Cluster, dim: usize) {
        let assignment = cluster.assignment();
        let k = assignment.num_workers();
        let files = assignment.num_files();
        let shape_ok = self.dim == dim
            && self.slabs.len() == k
            && self
                .slabs
                .iter()
                .enumerate()
                .all(|(w, s)| s.len() == assignment.graph().files_of(w).len() * dim);
        if !shape_ok {
            self.dim = dim;
            self.slabs = (0..k)
                .map(|w| vec![0.0; assignment.graph().files_of(w).len() * dim])
                .collect();
        }
        let r = assignment.replication();
        if self.slots.len() != files {
            self.slots = (0..files).map(|_| Vec::with_capacity(r)).collect();
        }
        self.worker_compute.resize(k, Duration::ZERO);
        self.participated.resize(k, false);
    }

    /// The gradient stored at `(worker, slot)`.
    fn replica(&self, worker: usize, slot: usize) -> &[f32] {
        &self.slabs[worker][slot * self.dim..(slot + 1) * self.dim]
    }
}

/// One mutable per-worker unit of the fill phase: the worker's whole
/// slab plus its measured compute time.
struct WorkerFill<'s> {
    slab: &'s mut [f32],
    took: Duration,
    alive: bool,
}

/// The gathered results of one arena round: `(worker, slot)` replica
/// references into the borrowed [`GradientArena`], no owned gradients.
///
/// The borrow keeps the arena immutable (and therefore stable) for as
/// long as any view handed out by [`ArenaRound::file_replicas`] lives.
#[derive(Debug)]
pub struct ArenaRound<'a> {
    arena: &'a GradientArena,
    /// Replicas computed by live workers but lost in transit.
    pub dropped_replicas: usize,
    /// Wall-clock time of the whole round.
    pub elapsed: Duration,
}

impl<'a> ArenaRound<'a> {
    /// Number of files in the round.
    pub fn num_files(&self) -> usize {
        self.arena.slots.len()
    }

    /// Per-worker compute durations (zero for crashed workers).
    pub fn worker_compute(&self) -> &[Duration] {
        &self.arena.worker_compute
    }

    /// Whether each worker computed this round.
    pub fn participated(&self) -> &[bool] {
        &self.arena.participated
    }

    /// Number of workers that computed this round.
    pub fn surviving_workers(&self) -> usize {
        self.arena.participated.iter().filter(|&&p| p).count()
    }

    /// The slowest surviving worker's compute time.
    ///
    /// # Errors
    ///
    /// [`ClusterError::NoSurvivingWorkers`] when every worker crashed.
    pub fn slowest_worker(&self) -> Result<Duration, ClusterError> {
        self.arena
            .worker_compute
            .iter()
            .zip(&self.arena.participated)
            .filter(|(_, &p)| p)
            .map(|(d, _)| *d)
            .max()
            .ok_or(ClusterError::NoSurvivingWorkers)
    }

    /// The arrived replicas of `file` as zero-copy views into the arena,
    /// in ascending worker order — the exact shape
    /// `byz_aggregate::quorum_vote` takes.
    pub fn file_replicas(&self, file: usize) -> Vec<(usize, &'a [f32])> {
        let mut out = Vec::with_capacity(self.arena.slots[file].len());
        self.collect_file_replicas(file, &mut out);
        out
    }

    /// Allocation-free variant of [`ArenaRound::file_replicas`]: clears
    /// and refills a caller-owned scratch vector.
    pub fn collect_file_replicas(&self, file: usize, out: &mut Vec<(usize, &'a [f32])>) {
        out.clear();
        out.extend(
            self.arena.slots[file]
                .iter()
                .map(|&(w, slot)| (w, self.arena.replica(w, slot))),
        );
    }

    /// Number of replicas that arrived for `file`.
    pub fn replica_count(&self, file: usize) -> usize {
        self.arena.slots[file].len()
    }

    /// Copies the round out into the legacy owned representation —
    /// identical (replicas, participation, drop counts) to what
    /// [`Cluster::compute_round_faulty`] would have produced. This is the
    /// bridge the bit-identity tests pin the arena path against; it is
    /// *not* on the hot path.
    pub fn materialize(&self) -> ComputedRound {
        ComputedRound {
            replicas: (0..self.num_files())
                .map(|f| {
                    self.arena.slots[f]
                        .iter()
                        .map(|&(w, slot)| (w, self.arena.replica(w, slot).to_vec()))
                        .collect()
                })
                .collect(),
            worker_compute: self.arena.worker_compute.clone(),
            participated: self.arena.participated.clone(),
            dropped_replicas: self.dropped_replicas,
            elapsed: self.elapsed,
        }
    }
}

impl Cluster {
    /// Executes one computation round through the gradient arena: the
    /// zero-copy counterpart of [`Cluster::compute_round`].
    pub fn compute_round_arena<'a>(
        &self,
        compute: &(dyn WorkerCompute + Sync),
        params: &[f32],
        arena: &'a mut GradientArena,
    ) -> ArenaRound<'a> {
        self.compute_round_arena_masked(compute, params, &FaultPlan::none(), 0, None, arena)
    }

    /// Fault-injected arena round; the zero-copy counterpart of
    /// [`Cluster::compute_round_faulty`]. Fault decisions are functions
    /// of `(plan, round, worker, file)` only, so
    /// [`ArenaRound::materialize`] is identical to the legacy round under
    /// the same plan.
    pub fn compute_round_arena_faulty<'a>(
        &self,
        compute: &(dyn WorkerCompute + Sync),
        params: &[f32],
        plan: &FaultPlan,
        round: u64,
        arena: &'a mut GradientArena,
    ) -> ArenaRound<'a> {
        self.compute_round_arena_masked(compute, params, plan, round, None, arena)
    }

    /// Reputation-masked arena round; the zero-copy counterpart of
    /// [`Cluster::compute_round_reputed`].
    pub fn compute_round_arena_reputed<'a>(
        &self,
        compute: &(dyn WorkerCompute + Sync),
        params: &[f32],
        plan: &FaultPlan,
        round: u64,
        active: &[bool],
        arena: &'a mut GradientArena,
    ) -> ArenaRound<'a> {
        self.compute_round_arena_masked(compute, params, plan, round, Some(active), arena)
    }

    fn compute_round_arena_masked<'a>(
        &self,
        compute: &(dyn WorkerCompute + Sync),
        params: &[f32],
        plan: &FaultPlan,
        round: u64,
        active: Option<&[bool]>,
        arena: &'a mut GradientArena,
    ) -> ArenaRound<'a> {
        let start = Instant::now();
        let dim = params.len();
        arena.ensure_shape(self, dim);
        let k = self.assignment().num_workers();

        // Fill phase: each live worker overwrites every slot of its own
        // slab. Slabs are disjoint, so the threaded fan-out writes the
        // same bits as the sequential loop.
        let mut fills: Vec<WorkerFill<'_>> = arena
            .slabs
            .iter_mut()
            .map(|s| WorkerFill {
                slab: s.as_mut_slice(),
                took: Duration::ZERO,
                alive: false,
            })
            .collect();
        let fill_one = |worker: usize, fill: &mut WorkerFill<'_>| {
            let crashed = plan.is_crashed(worker)
                || active.is_some_and(|mask| mask.get(worker).copied() == Some(false));
            if crashed {
                fill.took = Duration::ZERO;
                fill.alive = false;
                return;
            }
            let t0 = Instant::now();
            for (i, &file) in self
                .assignment()
                .graph()
                .files_of(worker)
                .iter()
                .enumerate()
            {
                compute.gradient_into(params, file, &mut fill.slab[i * dim..(i + 1) * dim]);
            }
            fill.took = t0.elapsed();
            fill.alive = true;
        };
        match self.mode() {
            ExecutionMode::Sequential => {
                for (w, fill) in fills.iter_mut().enumerate() {
                    fill_one(w, fill);
                }
            }
            ExecutionMode::Threaded { max_threads } => {
                let chunk = k.div_ceil(max_threads.max(1));
                byz_kernel::parallel_chunks_mut(&mut fills, chunk, |first, chunk_fills| {
                    for (off, fill) in chunk_fills.iter_mut().enumerate() {
                        fill_one(first + off, fill);
                    }
                });
            }
        }

        // Gather phase: record durations/participation (overwrite, no
        // re-zero) and rebuild the per-file slot lists. Iterating workers
        // in ascending order makes each file's list ascending by
        // construction — no sort.
        let mut dropped_replicas = 0usize;
        for (w, fill) in fills.iter().enumerate() {
            arena.worker_compute[w] = fill.took;
            arena.participated[w] = fill.alive;
        }
        for slot_list in &mut arena.slots {
            slot_list.clear();
        }
        for w in 0..k {
            if !arena.participated[w] {
                continue;
            }
            for (i, &file) in self.assignment().graph().files_of(w).iter().enumerate() {
                if plan.drops_replica(round, 0, w, file) {
                    dropped_replicas += 1;
                } else {
                    arena.slots[file].push((w, i));
                }
            }
        }

        ArenaRound {
            arena,
            dropped_replicas,
            elapsed: start.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use byz_assign::MolsAssignment;

    fn toy_compute(params: &[f32], file: usize) -> Vec<f32> {
        params.iter().map(|p| p + file as f32).collect()
    }

    fn assignment() -> byz_assign::Assignment {
        MolsAssignment::new(5, 3).unwrap().build()
    }

    fn strip_timing(mut round: ComputedRound) -> ComputedRound {
        round.worker_compute = Vec::new();
        round.elapsed = Duration::ZERO;
        round
    }

    fn assert_rounds_equal(a: &ComputedRound, b: &ComputedRound) {
        assert_eq!(a.replicas, b.replicas);
        assert_eq!(a.participated, b.participated);
        assert_eq!(a.dropped_replicas, b.dropped_replicas);
    }

    #[test]
    fn arena_matches_legacy_round() {
        let cluster = Cluster::new(assignment(), ExecutionMode::Sequential);
        let params = vec![1.0f32, 2.0];
        let legacy = cluster.compute_round(&toy_compute, &params);
        let mut arena = GradientArena::new();
        let round = cluster.compute_round_arena(&toy_compute, &params, &mut arena);
        assert_rounds_equal(&round.materialize(), &legacy);
    }

    #[test]
    fn arena_reuse_across_rounds_stays_identical_to_legacy() {
        // ≥20 consecutive rounds with evolving params and faults: the
        // reused (never re-zeroed) slabs must keep producing exactly the
        // legacy rounds, proving no stale data leaks through slot lists.
        let plan = FaultPlan::new(21).crash(3).drop_rate(0.2);
        let cluster = Cluster::new(assignment(), ExecutionMode::Sequential);
        let mut arena = GradientArena::new();
        let mut params = vec![0.4f32, -1.1, 2.5];
        for round in 0..25u64 {
            let legacy = cluster.compute_round_faulty(&toy_compute, &params, &plan, round);
            let a =
                cluster.compute_round_arena_faulty(&toy_compute, &params, &plan, round, &mut arena);
            assert_rounds_equal(&a.materialize(), &legacy);
            params.iter_mut().for_each(|p| *p += 0.01);
        }
    }

    #[test]
    fn threaded_arena_is_bit_identical_to_sequential() {
        let plan = FaultPlan::new(7).crash(4).drop_rate(0.15);
        let seq = Cluster::new(assignment(), ExecutionMode::Sequential);
        let thr = Cluster::new(assignment(), ExecutionMode::Threaded { max_threads: 4 });
        let params = vec![0.25f32, -1.5];
        let mut arena_a = GradientArena::new();
        let mut arena_b = GradientArena::new();
        for round in 0..6 {
            let a = seq
                .compute_round_arena_faulty(&toy_compute, &params, &plan, round, &mut arena_a)
                .materialize();
            let b = thr
                .compute_round_arena_faulty(&toy_compute, &params, &plan, round, &mut arena_b)
                .materialize();
            assert_rounds_equal(&strip_timing(a), &strip_timing(b));
        }
    }

    #[test]
    fn file_replicas_are_views_into_the_arena() {
        let cluster = Cluster::new(assignment(), ExecutionMode::Sequential);
        let mut arena = GradientArena::new();
        let round = cluster.compute_round_arena(&toy_compute, &[1.0, 2.0], &mut arena);
        let reps = round.file_replicas(0);
        assert_eq!(reps.len(), 3);
        for (w, g) in &reps {
            assert_eq!(g, &[1.0, 2.0], "worker {w}");
        }
        // Ascending worker order, and votable as-is.
        assert!(reps.windows(2).all(|p| p[0].0 < p[1].0));
        let outcome = byz_aggregate::quorum_vote(&reps, 1, 3).unwrap();
        assert_eq!(outcome.value, vec![1.0, 2.0]);
        assert_eq!(outcome.votes, 3);
    }

    #[test]
    fn steady_state_does_not_grow_capacity() {
        let cluster = Cluster::new(assignment(), ExecutionMode::Sequential);
        let mut arena = GradientArena::new();
        let params = vec![0.0f32; 64];
        let _warm = cluster.compute_round_arena(&toy_compute, &params, &mut arena);
        let cap = arena.capacity();
        for _ in 0..5 {
            let _round = cluster.compute_round_arena(&toy_compute, &params, &mut arena);
        }
        assert_eq!(arena.capacity(), cap);
    }

    #[test]
    fn masked_arena_round_skips_quarantined_workers() {
        let cluster = Cluster::new(assignment(), ExecutionMode::Sequential);
        let mut active = vec![true; 15];
        active[2] = false;
        let mut arena = GradientArena::new();
        let round = cluster.compute_round_arena_reputed(
            &toy_compute,
            &[1.0],
            &FaultPlan::none(),
            0,
            &active,
            &mut arena,
        );
        assert!(!round.participated()[2]);
        assert_eq!(round.surviving_workers(), 14);
        for f in 0..round.num_files() {
            assert!(round.file_replicas(f).iter().all(|(w, _)| *w != 2));
        }
    }
}
