//! The synchronous computation round engine.

use crate::{ClusterError, FaultPlan};
use byz_assign::Assignment;
use std::time::{Duration, Instant};

/// The gradient oracle a worker runs: given the current model parameters
/// and a file index, return the summed gradient over that file's samples
/// (paper Algorithm 1, line 7).
///
/// Implementations must be deterministic in `(params, file)` so that the
/// replicas of a file computed by different honest workers agree exactly
/// — the property the majority vote of Eq. (3) relies on.
///
/// [`Cluster::compute_round`] (which may fan out to threads) requires
/// `Sync` implementors; [`Cluster::compute_round_local`] accepts
/// non-`Sync` ones (e.g. oracles over `Rc`-based autograd models) and
/// always runs sequentially.
pub trait WorkerCompute {
    /// Computes the gradient of `file` at `params`.
    fn gradient(&self, params: &[f32], file: usize) -> Vec<f32>;

    /// Computes the gradient of `file` at `params` directly into `out`
    /// (an arena slot of length `params.len()`).
    ///
    /// The default delegates to [`WorkerCompute::gradient`] and copies,
    /// so every existing implementor works with the arena path
    /// unchanged; allocation-sensitive oracles should override this to
    /// write in place and make the round hot path allocation-free.
    ///
    /// # Panics
    ///
    /// The default panics if the computed gradient's length differs from
    /// `out.len()` — arena slots are fixed at the model dimension.
    fn gradient_into(&self, params: &[f32], file: usize, out: &mut [f32]) {
        out.copy_from_slice(&self.gradient(params, file));
    }
}

impl<F> WorkerCompute for F
where
    F: Fn(&[f32], usize) -> Vec<f32>,
{
    fn gradient(&self, params: &[f32], file: usize) -> Vec<f32> {
        self(params, file)
    }
}

/// How the round is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionMode {
    /// Single-threaded, workers processed in index order. Deterministic
    /// and convenient for tests/experiments.
    Sequential,
    /// Worker batches fan out onto the persistent [`byz_kernel`] thread
    /// pool — exercises the actual concurrent fan-out/fan-in structure
    /// without paying per-round thread-spawn latency. The worker→batch
    /// partition depends only on `(num_workers, max_threads)`, so results
    /// are identical to [`ExecutionMode::Sequential`].
    Threaded {
        /// Maximum simultaneously running worker batches.
        max_threads: usize,
    },
}

/// The gathered results of one synchronous round.
///
/// Under a [`FaultPlan`] the round may be *partial*: crashed workers
/// contribute no replicas at all, and individual replicas may be dropped
/// in transit, so `replicas[file]` can hold anywhere between `0` and `r`
/// entries.
#[derive(Debug, Clone)]
pub struct ComputedRound {
    /// `replicas[file]` = the `(worker, gradient)` pairs that *arrived*
    /// for that file, in ascending worker order. Without faults every
    /// file holds exactly `r` entries.
    pub replicas: Vec<Vec<(usize, Vec<f32>)>>,
    /// Per-worker wall-clock compute time (zero for crashed workers).
    pub worker_compute: Vec<Duration>,
    /// `participated[w]` — whether worker `w` computed this round (false
    /// exactly for workers the fault plan crashed).
    pub participated: Vec<bool>,
    /// Replicas computed by live workers but lost in transit.
    pub dropped_replicas: usize,
    /// Wall-clock time of the whole round (with synchronization barriers,
    /// this is what the PS observes).
    pub elapsed: Duration,
}

impl ComputedRound {
    /// The straggler time: the slowest *surviving* worker's compute
    /// duration, which bounds a synchronous iteration.
    ///
    /// # Errors
    ///
    /// [`ClusterError::NoSurvivingWorkers`] when the cluster is empty or
    /// every worker crashed — an all-crashed round has no straggler time,
    /// and silently reporting `0s` would let a dead cluster masquerade as
    /// an infinitely fast one in iteration-time estimates.
    pub fn slowest_worker(&self) -> Result<Duration, ClusterError> {
        self.worker_compute
            .iter()
            .zip(&self.participated)
            .filter(|(_, &p)| p)
            .map(|(d, _)| *d)
            .max()
            .ok_or(ClusterError::NoSurvivingWorkers)
    }

    /// Number of workers that computed this round.
    pub fn surviving_workers(&self) -> usize {
        self.participated.iter().filter(|&&p| p).count()
    }
}

/// A simulated synchronous cluster bound to a task assignment.
#[derive(Debug, Clone)]
pub struct Cluster {
    assignment: Assignment,
    mode: ExecutionMode,
}

impl Cluster {
    /// Creates a cluster executing rounds in the given mode.
    pub fn new(assignment: Assignment, mode: ExecutionMode) -> Self {
        Cluster { assignment, mode }
    }

    /// The worker–file assignment in force.
    pub fn assignment(&self) -> &Assignment {
        &self.assignment
    }

    /// The execution mode.
    pub fn mode(&self) -> ExecutionMode {
        self.mode
    }

    /// Executes one computation round at `params` in the cluster's mode:
    /// every worker computes the true gradient of each of its assigned
    /// files.
    pub fn compute_round(
        &self,
        compute: &(dyn WorkerCompute + Sync),
        params: &[f32],
    ) -> ComputedRound {
        self.compute_round_faulty(compute, params, &FaultPlan::none(), 0)
    }

    /// Executes one computation round under a [`FaultPlan`]: crashed
    /// workers compute nothing, and each surviving replica is dropped in
    /// transit according to the plan's seeded decision for
    /// `(round, attempt 0, worker, file)`. The resulting
    /// [`ComputedRound`] may therefore hold *partial* replica sets.
    ///
    /// Fault injection is deterministic: a fixed `(plan, round)` yields
    /// the same surviving replica structure in both execution modes, so
    /// the Threaded/Sequential bit-identity guarantee extends to faulty
    /// rounds.
    pub fn compute_round_faulty(
        &self,
        compute: &(dyn WorkerCompute + Sync),
        params: &[f32],
        plan: &FaultPlan,
        round: u64,
    ) -> ComputedRound {
        self.compute_round_masked(compute, params, plan, round, None)
    }

    /// Executes one fault-injected round with a reputation mask:
    /// workers with `active[w] == false` (quarantined by a
    /// `byz_reputation::ReputationLedger`) are skipped exactly like
    /// crashed workers — they compute nothing and contribute no
    /// replicas — but are reported distinctly via
    /// [`ComputedRound::participated`] being `false` while the fault
    /// plan does not crash them.
    ///
    /// The mask is applied identically in both execution modes, so the
    /// Sequential/Threaded bit-identity guarantee extends to
    /// reputation-masked rounds.
    pub fn compute_round_reputed(
        &self,
        compute: &(dyn WorkerCompute + Sync),
        params: &[f32],
        plan: &FaultPlan,
        round: u64,
        active: &[bool],
    ) -> ComputedRound {
        self.compute_round_masked(compute, params, plan, round, Some(active))
    }

    fn compute_round_masked(
        &self,
        compute: &(dyn WorkerCompute + Sync),
        params: &[f32],
        plan: &FaultPlan,
        round: u64,
        active: Option<&[bool]>,
    ) -> ComputedRound {
        let start = Instant::now();
        let k = self.assignment.num_workers();
        let per_worker: Vec<(Vec<Vec<f32>>, Duration)> = match self.mode {
            ExecutionMode::Sequential => (0..k)
                .map(|w| self.run_worker(w, compute, params, plan, active))
                .collect(),
            ExecutionMode::Threaded { max_threads } => {
                let chunk = k.div_ceil(max_threads.max(1));
                let mut results: Vec<Option<(Vec<Vec<f32>>, Duration)>> = vec![None; k];
                byz_kernel::parallel_chunks_mut(&mut results, chunk, |first_worker, slot_chunk| {
                    for (off, slot) in slot_chunk.iter_mut().enumerate() {
                        *slot = Some(self.run_worker(
                            first_worker + off,
                            compute,
                            params,
                            plan,
                            active,
                        ));
                    }
                });
                results
                    .into_iter()
                    // Invariant, not a fault path: parallel_chunks_mut
                    // partitions 0..k into disjoint chunks and joins all
                    // of them before returning, so every slot was
                    // written exactly once. A None here is a kernel bug,
                    // not an injected fault, and must stay a panic.
                    .map(|r| r.expect("parallel_chunks_mut visits every worker slot"))
                    .collect()
            }
        };

        self.gather(per_worker, plan, round, start, active)
    }

    /// Executes one computation round sequentially regardless of the
    /// cluster's mode. Accepts non-`Sync` computers (e.g. gradient oracles
    /// over single-threaded autograd models).
    pub fn compute_round_local(
        &self,
        compute: &dyn WorkerCompute,
        params: &[f32],
    ) -> ComputedRound {
        self.compute_round_local_faulty(compute, params, &FaultPlan::none(), 0)
    }

    /// Sequential fault-injected round for non-`Sync` computers; the
    /// counterpart of [`Cluster::compute_round_faulty`].
    pub fn compute_round_local_faulty(
        &self,
        compute: &dyn WorkerCompute,
        params: &[f32],
        plan: &FaultPlan,
        round: u64,
    ) -> ComputedRound {
        let start = Instant::now();
        let k = self.assignment.num_workers();
        let per_worker: Vec<(Vec<Vec<f32>>, Duration)> = (0..k)
            .map(|w| self.run_worker(w, compute, params, plan, None))
            .collect();
        self.gather(per_worker, plan, round, start, None)
    }

    /// Collects per-worker results into per-file replica lists (ascending
    /// worker order is implied by iterating workers in order), discarding
    /// replicas the fault plan drops in transit.
    fn gather(
        &self,
        per_worker: Vec<(Vec<Vec<f32>>, Duration)>,
        plan: &FaultPlan,
        round: u64,
        start: Instant,
        active: Option<&[bool]>,
    ) -> ComputedRound {
        // Preallocated at the replication degree: a file can never gather
        // more than `r` replicas, so the per-file lists never reallocate.
        let r = self.assignment.replication();
        let mut replicas: Vec<Vec<(usize, Vec<f32>)>> = (0..self.assignment.num_files())
            .map(|_| Vec::with_capacity(r))
            .collect();
        let mut worker_compute = Vec::with_capacity(per_worker.len());
        let mut participated = Vec::with_capacity(per_worker.len());
        let mut dropped_replicas = 0usize;
        for (w, (grads, took)) in per_worker.into_iter().enumerate() {
            let alive = !plan.is_crashed(w)
                && !matches!(active, Some(mask) if mask.get(w).copied() == Some(false));
            worker_compute.push(took);
            participated.push(alive);
            if !alive {
                continue;
            }
            for (file, grad) in self.assignment.graph().files_of(w).iter().zip(grads) {
                if plan.drops_replica(round, 0, w, *file) {
                    dropped_replicas += 1;
                } else {
                    replicas[*file].push((w, grad));
                }
            }
        }
        for (file, reps) in replicas.iter_mut().enumerate() {
            reps.sort_by_key(|(w, _)| *w);
            debug_assert!(
                reps.len() <= self.assignment.replication(),
                "file {file} has too many replicas"
            );
            debug_assert!(
                !plan.is_trivial()
                    || active.is_some()
                    || reps.len() == self.assignment.replication(),
                "file {file} lost replicas without a fault plan"
            );
        }
        ComputedRound {
            replicas,
            worker_compute,
            participated,
            dropped_replicas,
            elapsed: start.elapsed(),
        }
    }

    fn run_worker(
        &self,
        worker: usize,
        compute: &dyn WorkerCompute,
        params: &[f32],
        plan: &FaultPlan,
        active: Option<&[bool]>,
    ) -> (Vec<Vec<f32>>, Duration) {
        if plan.is_crashed(worker)
            || active.is_some_and(|mask| mask.get(worker).copied() == Some(false))
        {
            // Fail-stop crash, or quarantined by the reputation mask:
            // the worker never computes.
            return (Vec::new(), Duration::ZERO);
        }
        let start = Instant::now();
        let grads = self
            .assignment
            .graph()
            .files_of(worker)
            .iter()
            .map(|&file| compute.gradient(params, file))
            .collect();
        (grads, start.elapsed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use byz_assign::MolsAssignment;

    fn toy_compute(params: &[f32], file: usize) -> Vec<f32> {
        // Deterministic pseudo-gradient: g_j = params_j + file.
        params.iter().map(|p| p + file as f32).collect()
    }

    fn assignment() -> Assignment {
        MolsAssignment::new(5, 3).unwrap().build()
    }

    #[test]
    fn sequential_round_structure() {
        let cluster = Cluster::new(assignment(), ExecutionMode::Sequential);
        let round = cluster.compute_round(&toy_compute, &[1.0, 2.0]);
        assert_eq!(round.replicas.len(), 25);
        for (file, reps) in round.replicas.iter().enumerate() {
            assert_eq!(reps.len(), 3, "file {file}");
            // Replicas agree exactly (honest determinism).
            for (_, g) in reps {
                assert_eq!(g, &vec![1.0 + file as f32, 2.0 + file as f32]);
            }
            // Worker order ascending.
            assert!(reps.windows(2).all(|w| w[0].0 < w[1].0));
        }
        assert_eq!(round.worker_compute.len(), 15);
        assert!(round.participated.iter().all(|&p| p));
        assert_eq!(round.dropped_replicas, 0);
        assert!(round.slowest_worker().unwrap() <= round.elapsed);
    }

    #[test]
    fn threaded_matches_sequential() {
        let seq = Cluster::new(assignment(), ExecutionMode::Sequential);
        let thr = Cluster::new(assignment(), ExecutionMode::Threaded { max_threads: 4 });
        let params = vec![0.5, -0.5, 2.0];
        let a = seq.compute_round(&toy_compute, &params);
        let b = thr.compute_round(&toy_compute, &params);
        for (ra, rb) in a.replicas.iter().zip(&b.replicas) {
            assert_eq!(ra, rb);
        }
    }

    #[test]
    fn threaded_training_is_bit_identical_to_sequential() {
        // Multi-round SGD driven by each engine must agree to the bit:
        // the pool's worker→batch partition is shape-derived, so the
        // gathered replica order (and every float op) is identical.
        let run = |mode: ExecutionMode| {
            let cluster = Cluster::new(assignment(), mode);
            let mut params = vec![0.3f32, -1.7, 0.9];
            for _ in 0..5 {
                let round = cluster.compute_round(&toy_compute, &params);
                for reps in &round.replicas {
                    for (_, g) in reps {
                        for (p, gv) in params.iter_mut().zip(g) {
                            *p -= 1e-3 * gv;
                        }
                    }
                }
            }
            params.iter().map(|v| v.to_bits()).collect::<Vec<u32>>()
        };
        assert_eq!(
            run(ExecutionMode::Sequential),
            run(ExecutionMode::Threaded { max_threads: 4 }),
        );
    }

    #[test]
    fn threaded_handles_more_threads_than_workers() {
        let thr = Cluster::new(assignment(), ExecutionMode::Threaded { max_threads: 64 });
        let round = thr.compute_round(&toy_compute, &[1.0]);
        assert_eq!(round.replicas.len(), 25);
    }

    #[test]
    fn faulty_round_has_partial_replicas() {
        let plan = FaultPlan::new(99).crash(0).drop_rate(0.25);
        let cluster = Cluster::new(assignment(), ExecutionMode::Sequential);
        let round = cluster.compute_round_faulty(&toy_compute, &[1.0], &plan, 3);
        assert!(!round.participated[0]);
        assert_eq!(round.worker_compute[0], Duration::ZERO);
        assert_eq!(round.surviving_workers(), 14);
        // Worker 0's files each lost one replica; drops remove more.
        let total: usize = round.replicas.iter().map(Vec::len).sum();
        assert!(total < 75, "some replicas must be missing, got {total}");
        assert!(round.dropped_replicas > 0);
        // Surviving replicas are still honest and ordered.
        for reps in &round.replicas {
            assert!(reps.windows(2).all(|w| w[0].0 < w[1].0));
            assert!(reps.iter().all(|(w, _)| *w != 0));
        }
    }

    #[test]
    fn threaded_matches_sequential_under_faults() {
        // The Threaded/Sequential bit-identity pin extends to faulty
        // rounds: the fault decisions are functions of (plan, round,
        // worker, file), never of scheduling.
        let plan = FaultPlan::new(7).crash(4).straggle(2, 8.0).drop_rate(0.2);
        let seq = Cluster::new(assignment(), ExecutionMode::Sequential);
        let thr = Cluster::new(assignment(), ExecutionMode::Threaded { max_threads: 4 });
        let params = vec![0.25f32, -1.5];
        for round in 0..6 {
            let a = seq.compute_round_faulty(&toy_compute, &params, &plan, round);
            let b = thr.compute_round_faulty(&toy_compute, &params, &plan, round);
            assert_eq!(a.replicas, b.replicas, "round {round}");
            assert_eq!(a.participated, b.participated);
            assert_eq!(a.dropped_replicas, b.dropped_replicas);
        }
    }

    #[test]
    fn faulty_training_is_bit_identical_across_modes() {
        // Multi-round SGD over partial replica sets must agree to the bit
        // between engines (extends the no-fault pin below).
        let plan = FaultPlan::new(13).crash(1).drop_rate(0.15);
        let run = |mode: ExecutionMode| {
            let cluster = Cluster::new(assignment(), mode);
            let mut params = vec![0.3f32, -1.7, 0.9];
            for round in 0..5 {
                let r = cluster.compute_round_faulty(&toy_compute, &params, &plan, round);
                for reps in &r.replicas {
                    for (_, g) in reps {
                        for (p, gv) in params.iter_mut().zip(g) {
                            *p -= 1e-3 * gv;
                        }
                    }
                }
            }
            params.iter().map(|v| v.to_bits()).collect::<Vec<u32>>()
        };
        assert_eq!(
            run(ExecutionMode::Sequential),
            run(ExecutionMode::Threaded { max_threads: 4 }),
        );
    }

    #[test]
    fn reputation_mask_skips_quarantined_workers() {
        let cluster = Cluster::new(assignment(), ExecutionMode::Sequential);
        let mut active = vec![true; 15];
        active[2] = false;
        active[9] = false;
        let round =
            cluster.compute_round_reputed(&toy_compute, &[1.0], &FaultPlan::none(), 0, &active);
        assert!(!round.participated[2]);
        assert!(!round.participated[9]);
        assert_eq!(round.surviving_workers(), 13);
        for reps in &round.replicas {
            assert!(reps.iter().all(|(w, _)| *w != 2 && *w != 9));
        }
    }

    #[test]
    fn masked_round_is_bit_identical_across_modes() {
        let plan = FaultPlan::new(5).drop_rate(0.2);
        let mut active = vec![true; 15];
        active[4] = false;
        let seq = Cluster::new(assignment(), ExecutionMode::Sequential);
        let thr = Cluster::new(assignment(), ExecutionMode::Threaded { max_threads: 4 });
        let params = vec![0.5f32, 1.5];
        for round in 0..4 {
            let a = seq.compute_round_reputed(&toy_compute, &params, &plan, round, &active);
            let b = thr.compute_round_reputed(&toy_compute, &params, &plan, round, &active);
            assert_eq!(a.replicas, b.replicas, "round {round}");
            assert_eq!(a.participated, b.participated);
        }
    }

    #[test]
    fn all_crashed_round_reports_no_survivors() {
        let plan = FaultPlan::new(0).crash_many(0..15);
        let cluster = Cluster::new(assignment(), ExecutionMode::Sequential);
        let round = cluster.compute_round_faulty(&toy_compute, &[1.0], &plan, 0);
        assert_eq!(round.surviving_workers(), 0);
        assert!(round.replicas.iter().all(Vec::is_empty));
        assert_eq!(
            round.slowest_worker(),
            Err(crate::ClusterError::NoSurvivingWorkers)
        );
    }

    #[test]
    fn closure_implements_worker_compute() {
        let doubled = |params: &[f32], _file: usize| params.iter().map(|p| p * 2.0).collect();
        let cluster = Cluster::new(assignment(), ExecutionMode::Sequential);
        let round = cluster.compute_round(&doubled, &[3.0]);
        assert_eq!(round.replicas[0][0].1, vec![6.0]);
    }
}
