//! Deterministic fault injection for cluster rounds.
//!
//! A [`FaultPlan`] marks workers crashed (they never return anything),
//! stragglers (their compute time is modelled as a latency multiplier fed
//! into [`CostModel`](crate::CostModel)), or message-droppers (individual
//! file replicas are lost with a configured probability). Every decision
//! is a pure function of `(seed, round, attempt, worker, file)`, so a
//! plan replays bit-identically: the same seed produces the same crashed
//! set, the same dropped replicas, and therefore the same degraded-round
//! outcome — the reproducibility the chaos test suite pins.
//!
//! The plan is transport-agnostic: the in-process engine
//! ([`Cluster::compute_round_faulty`](crate::Cluster::compute_round_faulty))
//! and the `byz-wire` message-passing server both consult the same plan
//! type, so both transports degrade under one policy.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Errors from fault-aware cluster queries and from the socket
/// deployment layer (`byz-wire`'s TCP transport reports peer and
/// transport failures through this type so that a remote worker dying is
/// an *error*, never a panic — the same class of observable failure as a
/// crashed in-process worker).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// Every worker is crashed (or the cluster is empty): there is no
    /// straggler time, no surviving compute, nothing to estimate.
    NoSurvivingWorkers,
    /// A remote peer's connection was lost and could not be
    /// re-established within the reconnect budget.
    PeerDisconnected {
        /// The worker whose link died.
        worker: usize,
    },
    /// A deployed job never assembled: fewer than `expected` workers
    /// completed the handshake before the readiness deadline.
    HandshakeTimeout {
        /// The job that failed to assemble.
        job_id: u64,
        /// Workers that did complete the handshake.
        connected: usize,
        /// Workers the job's assignment requires.
        expected: usize,
    },
    /// A transport-level failure (bind, accept, stream clone, …) in the
    /// socket deployment, with the underlying error rendered as text.
    Transport(String),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::NoSurvivingWorkers => {
                write!(
                    f,
                    "no surviving workers: the cluster is empty or fully crashed"
                )
            }
            ClusterError::PeerDisconnected { worker } => {
                write!(f, "worker {worker}'s connection was lost for good")
            }
            ClusterError::HandshakeTimeout {
                job_id,
                connected,
                expected,
            } => write!(
                f,
                "job {job_id} never assembled: {connected}/{expected} workers completed the handshake"
            ),
            ClusterError::Transport(what) => write!(f, "transport failure: {what}"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// A seeded, reproducible fault-injection plan.
///
/// The default plan ([`FaultPlan::none`]) injects nothing, so fault-aware
/// code paths degenerate to the happy path bit-for-bit.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    crashed: BTreeSet<usize>,
    stragglers: BTreeMap<usize, f64>,
    drop_rate: f64,
    disconnects: BTreeMap<usize, u64>,
    stalls: BTreeMap<usize, u64>,
    joins: BTreeMap<usize, u64>,
    leaves: BTreeMap<usize, u64>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The empty plan: no crashes, no stragglers, no drops.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            crashed: BTreeSet::new(),
            stragglers: BTreeMap::new(),
            drop_rate: 0.0,
            disconnects: BTreeMap::new(),
            stalls: BTreeMap::new(),
            joins: BTreeMap::new(),
            leaves: BTreeMap::new(),
        }
    }

    /// A plan whose replica drops are derived from `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::none()
        }
    }

    /// Marks a worker fail-stop crashed: it computes nothing and returns
    /// nothing, in every round.
    pub fn crash(mut self, worker: usize) -> Self {
        self.crashed.insert(worker);
        self
    }

    /// Marks several workers crashed.
    pub fn crash_many(mut self, workers: impl IntoIterator<Item = usize>) -> Self {
        self.crashed.extend(workers);
        self
    }

    /// Marks a worker a straggler with the given latency multiplier
    /// (≥ 1.0; values below 1 are clamped). The multiplier scales the
    /// worker's modelled compute time in [`CostModel`](crate::CostModel)
    /// estimates — it does not change what the worker computes.
    pub fn straggle(mut self, worker: usize, multiplier: f64) -> Self {
        self.stragglers.insert(worker, multiplier.max(1.0));
        self
    }

    /// Sets the per-replica message drop probability in `[0, 1)`: each
    /// `(round, attempt, worker, file)` replica is independently lost
    /// with this probability, decided by a hash of the plan seed.
    pub fn drop_rate(mut self, rate: f64) -> Self {
        self.drop_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Schedules a connection fault: `worker` drops its transport link
    /// mid-round at `round` (after its first upload of that round), then
    /// reconnects through the handshake. Connection faults are a
    /// *socket-deployment* fault class — the in-process engine and the
    /// channel transport have no connections to cut and ignore them; over
    /// TCP a cut link degrades exactly like the replica-drop path.
    pub fn disconnect_at(mut self, worker: usize, round: u64) -> Self {
        self.disconnects.insert(worker, round);
        self
    }

    /// Schedules a half-open connection: from `round` onward, `worker`
    /// keeps its socket open and keeps reading broadcasts but never
    /// writes another frame — the stalled-peer failure TCP cannot
    /// distinguish from a slow one. Socket-deployment only, like
    /// [`FaultPlan::disconnect_at`].
    pub fn stall_from(mut self, worker: usize, round: u64) -> Self {
        self.stalls.insert(worker, round);
        self
    }

    /// Schedules an elastic join: `worker` is *absent* (not a cluster
    /// member, holds no files, sends nothing) for every round before
    /// `round`, then joins the job at the start of `round` and stays a
    /// member until it leaves (if ever). Joiners may use worker ids at or
    /// beyond the initial cluster size `K` — the membership universe is
    /// `max(K, max join id + 1)`.
    pub fn join_at(mut self, worker: usize, round: u64) -> Self {
        self.joins.insert(worker, round);
        self
    }

    /// Schedules a graceful departure: `worker` is a member for every
    /// round before `round` and gone from `round` onward. Unlike a crash
    /// (which strands the worker's replicas every round), a departure
    /// changes *membership*: the dynamic assignment layer re-replicates
    /// the departed worker's files onto the survivors.
    pub fn leave_at(mut self, worker: usize, round: u64) -> Self {
        self.leaves.insert(worker, round);
        self
    }

    /// The round at which `worker` joins, if it is a scheduled joiner.
    pub fn joins_at(&self, worker: usize) -> Option<u64> {
        self.joins.get(&worker).copied()
    }

    /// The round at which `worker` leaves, if it is scheduled to depart.
    pub fn leaves_at(&self, worker: usize) -> Option<u64> {
        self.leaves.get(&worker).copied()
    }

    /// Whether the plan schedules any membership change.
    pub fn has_churn(&self) -> bool {
        !self.joins.is_empty() || !self.leaves.is_empty()
    }

    /// Whether `worker` is a cluster member during `round`: it has
    /// joined (workers without a `join_at` entry are founding members)
    /// and has not yet left. Crashes are orthogonal — a crashed member
    /// is still a member, it just never delivers.
    pub fn is_member(&self, worker: usize, round: u64) -> bool {
        let joined = self.joins.get(&worker).is_none_or(|&j| round >= j);
        let left = self.leaves.get(&worker).is_some_and(|&l| round >= l);
        joined && !left
    }

    /// The member set of a cluster with `k` founding workers during
    /// `round`, ascending. Scheduled joiners with ids `≥ k` extend the
    /// universe; departed members are excluded.
    pub fn members_at(&self, k: usize, round: u64) -> Vec<usize> {
        (0..self.membership_universe(k))
            .filter(|&w| (w < k || self.joins.contains_key(&w)) && self.is_member(w, round))
            .collect()
    }

    /// The size of the worker-id universe for a cluster founded with `k`
    /// workers: founding ids plus every scheduled joiner's id.
    pub fn membership_universe(&self, k: usize) -> usize {
        self.joins.keys().map(|&w| w + 1).max().unwrap_or(0).max(k)
    }

    /// The rounds at which membership changes (some worker joins or
    /// leaves), ascending and deduplicated — the rounds the dynamic
    /// assignment layer must re-realize the placement.
    pub fn churn_rounds(&self) -> Vec<u64> {
        let mut rounds: BTreeSet<u64> = self.joins.values().copied().collect();
        rounds.extend(self.leaves.values().copied());
        rounds.into_iter().collect()
    }

    /// The scheduled joiners as `(worker, round)`, ascending by worker.
    pub fn joining_workers(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.joins.iter().map(|(&w, &r)| (w, r))
    }

    /// The scheduled leavers as `(worker, round)`, ascending by worker.
    pub fn leaving_workers(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.leaves.iter().map(|(&w, &r)| (w, r))
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether the plan injects no faults at all.
    pub fn is_trivial(&self) -> bool {
        self.crashed.is_empty()
            && self.stragglers.is_empty()
            && self.drop_rate == 0.0
            && self.disconnects.is_empty()
            && self.stalls.is_empty()
            && self.joins.is_empty()
            && self.leaves.is_empty()
    }

    /// The round at which `worker`'s connection is scheduled to be cut
    /// (one-shot), if any.
    pub fn disconnects_at(&self, worker: usize) -> Option<u64> {
        self.disconnects.get(&worker).copied()
    }

    /// The round from which `worker`'s connection goes half-open, if any.
    pub fn stalls_from(&self, worker: usize) -> Option<u64> {
        self.stalls.get(&worker).copied()
    }

    /// Whether the plan schedules any connection-level fault.
    pub fn has_connection_faults(&self) -> bool {
        !self.disconnects.is_empty() || !self.stalls.is_empty()
    }

    /// Whether `worker` is fail-stop crashed.
    pub fn is_crashed(&self, worker: usize) -> bool {
        self.crashed.contains(&worker)
    }

    /// The crashed worker set, ascending.
    pub fn crashed_workers(&self) -> impl Iterator<Item = usize> + '_ {
        self.crashed.iter().copied()
    }

    /// Number of crashed workers.
    pub fn num_crashed(&self) -> usize {
        self.crashed.len()
    }

    /// The worker's modelled latency multiplier (1.0 for non-stragglers).
    pub fn straggle_factor(&self, worker: usize) -> f64 {
        self.stragglers.get(&worker).copied().unwrap_or(1.0)
    }

    /// The configured per-replica drop probability.
    pub fn replica_drop_rate(&self) -> f64 {
        self.drop_rate
    }

    /// Whether the replica of `file` computed by `worker` is lost in
    /// transit during `(round, attempt)`. Deterministic in all five
    /// inputs; retries (`attempt > 0`) re-roll the loss, modelling an
    /// independent retransmission.
    pub fn drops_replica(&self, round: u64, attempt: u32, worker: usize, file: usize) -> bool {
        if self.drop_rate <= 0.0 {
            return false;
        }
        let h = splitmix64(
            self.seed
                ^ round.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ (attempt as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
                ^ (worker as u64).wrapping_mul(0x1656_67B1_9E37_79F9)
                ^ (file as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93),
        );
        // Map to [0, 1) with 53-bit precision.
        let unit = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < self.drop_rate
    }

    /// Whether one *chunk* of `worker`'s replica of `file` is lost in
    /// transit during `round` — the chunked-wire analogue of
    /// [`FaultPlan::drops_replica`], sharing its drop probability.
    /// A lost chunk leaves the replica incomplete, so it degrades
    /// exactly like a lost whole replica; the extra mixing constant
    /// keeps the per-chunk rolls independent of the per-replica ones
    /// (chunk 0's fate is not the batched frame's fate).
    pub fn drops_chunk(
        &self,
        round: u64,
        attempt: u32,
        worker: usize,
        file: usize,
        chunk: usize,
    ) -> bool {
        if self.drop_rate <= 0.0 {
            return false;
        }
        let h = splitmix64(
            self.seed
                ^ round.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ u64::from(attempt).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
                ^ (worker as u64).wrapping_mul(0x1656_67B1_9E37_79F9)
                ^ (chunk as u64)
                    .wrapping_add(1)
                    .wrapping_mul(0xA24B_AED4_963E_E407)
                ^ (file as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93),
        );
        let unit = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < self.drop_rate
    }

    /// Whether `worker`'s replica of `file` reaches the parameter server
    /// in `(round, attempt)` — i.e. the worker is alive and the message
    /// is not dropped.
    pub fn replica_arrives(&self, round: u64, attempt: u32, worker: usize, file: usize) -> bool {
        !self.is_crashed(worker) && !self.drops_replica(round, attempt, worker, file)
    }

    /// The surviving (non-crashed) workers of a `k`-worker cluster,
    /// ascending.
    pub fn surviving_workers(&self, k: usize) -> Vec<usize> {
        (0..k).filter(|w| !self.is_crashed(*w)).collect()
    }

    /// The largest modelled latency multiplier among surviving workers —
    /// the factor by which the synchronous barrier stretches.
    ///
    /// # Errors
    ///
    /// [`ClusterError::NoSurvivingWorkers`] if all `k` workers crashed
    /// (or `k == 0`): an all-crashed round has no straggler time, and
    /// modelling it as `0s` would silently hide a dead cluster.
    pub fn max_surviving_straggle(&self, k: usize) -> Result<f64, ClusterError> {
        (0..k)
            .filter(|w| !self.is_crashed(*w))
            .map(|w| self.straggle_factor(w))
            .fold(None, |acc: Option<f64>, x| {
                Some(acc.map_or(x, |a| a.max(x)))
            })
            .ok_or(ClusterError::NoSurvivingWorkers)
    }
}

/// The splitmix64 finalizer: a bijective avalanche mix, the same hash
/// family the kernel layer uses for deterministic chunk seeds.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_plan_injects_nothing() {
        let plan = FaultPlan::none();
        assert!(plan.is_trivial());
        assert!(!plan.is_crashed(0));
        assert_eq!(plan.straggle_factor(3), 1.0);
        assert!(!plan.drops_replica(7, 0, 2, 11));
        assert!(plan.replica_arrives(7, 0, 2, 11));
        assert_eq!(plan.surviving_workers(3), vec![0, 1, 2]);
    }

    #[test]
    fn drops_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::new(42).drop_rate(0.3);
        let b = FaultPlan::new(42).drop_rate(0.3);
        let c = FaultPlan::new(43).drop_rate(0.3);
        let pattern = |p: &FaultPlan| -> Vec<bool> {
            (0..200)
                .map(|i| p.drops_replica(i / 50, 0, (i % 10) as usize, (i % 25) as usize))
                .collect()
        };
        assert_eq!(pattern(&a), pattern(&b), "same seed ⇒ same drops");
        assert_ne!(pattern(&a), pattern(&c), "different seed ⇒ different drops");
    }

    #[test]
    fn chunk_drops_are_deterministic_and_independent_of_replica_drops() {
        let plan = FaultPlan::new(42).drop_rate(0.3);
        assert!(!FaultPlan::none().drops_chunk(7, 0, 2, 11, 3));
        let roll = |p: &FaultPlan| -> Vec<bool> {
            (0..400)
                .map(|i| {
                    p.drops_chunk(
                        i / 100,
                        0,
                        (i % 5) as usize,
                        (i % 25) as usize,
                        (i % 8) as usize,
                    )
                })
                .collect()
        };
        let chunk_pattern = roll(&plan);
        let again = roll(&plan);
        assert_eq!(chunk_pattern, again, "chunk drops are deterministic");
        let dropped = chunk_pattern.iter().filter(|&&d| d).count();
        assert!(
            (60..180).contains(&dropped),
            "drop rate roughly honored, got {dropped}/400"
        );
        // Chunk 0's fate must not simply mirror the whole-replica roll —
        // the rolls use distinct mixing, so they should disagree somewhere.
        let disagree =
            (0..400u64).any(|i| plan.drops_chunk(i, 0, 1, 2, 0) != plan.drops_replica(i, 0, 1, 2));
        assert!(
            disagree,
            "per-chunk rolls are independent of per-replica rolls"
        );
        // Retry waves re-roll chunk losses, like replica losses do.
        let reroll =
            (0..400u64).any(|i| plan.drops_chunk(i, 0, 1, 2, 3) != plan.drops_chunk(i, 1, 1, 2, 3));
        assert!(reroll, "attempt index participates in the chunk roll");
    }

    #[test]
    fn drop_rate_is_approximately_honored() {
        let plan = FaultPlan::new(7).drop_rate(0.2);
        let n = 10_000;
        let dropped = (0..n)
            .filter(|&i| plan.drops_replica(i as u64, 0, i % 13, i % 29))
            .count();
        let rate = dropped as f64 / n as f64;
        assert!((rate - 0.2).abs() < 0.02, "observed drop rate {rate}");
    }

    #[test]
    fn retries_reroll_drops() {
        let plan = FaultPlan::new(11).drop_rate(0.5);
        // Some replica must differ between attempt 0 and attempt 1.
        let differs = (0..100).any(|i| {
            plan.drops_replica(3, 0, i % 10, i % 25) != plan.drops_replica(3, 1, i % 10, i % 25)
        });
        assert!(differs, "attempt number must re-roll the drop decision");
    }

    #[test]
    fn crashes_and_stragglers() {
        let plan = FaultPlan::new(1)
            .crash(2)
            .crash_many([5, 7])
            .straggle(1, 3.5);
        assert!(plan.is_crashed(2) && plan.is_crashed(5) && plan.is_crashed(7));
        assert_eq!(plan.num_crashed(), 3);
        assert_eq!(plan.straggle_factor(1), 3.5);
        assert_eq!(plan.straggle_factor(0), 1.0);
        assert_eq!(plan.surviving_workers(8), vec![0, 1, 3, 4, 6]);
        assert_eq!(plan.max_surviving_straggle(8), Ok(3.5));
        // Crashed workers never deliver, even with drop_rate 0.
        assert!(!plan.replica_arrives(0, 0, 2, 0));
        assert!(plan.replica_arrives(0, 0, 0, 0));
    }

    #[test]
    fn all_crashed_is_an_explicit_error() {
        let plan = FaultPlan::new(0).crash_many(0..4);
        assert_eq!(
            plan.max_surviving_straggle(4),
            Err(ClusterError::NoSurvivingWorkers)
        );
        assert_eq!(
            FaultPlan::none().max_surviving_straggle(0),
            Err(ClusterError::NoSurvivingWorkers)
        );
    }

    #[test]
    fn churn_membership_windows() {
        // 4 founders; worker 5 joins at round 2, worker 1 leaves at
        // round 3, worker 5 leaves again at round 6.
        let plan = FaultPlan::new(9)
            .join_at(5, 2)
            .leave_at(1, 3)
            .leave_at(5, 6);
        assert!(plan.has_churn());
        assert!(!plan.is_trivial());
        assert_eq!(plan.membership_universe(4), 6);
        assert_eq!(plan.churn_rounds(), vec![2, 3, 6]);

        assert_eq!(plan.members_at(4, 0), vec![0, 1, 2, 3]);
        assert_eq!(plan.members_at(4, 2), vec![0, 1, 2, 3, 5]);
        assert_eq!(plan.members_at(4, 3), vec![0, 2, 3, 5]);
        assert_eq!(plan.members_at(4, 6), vec![0, 2, 3]);

        // Joiners are absent before their join round even though their
        // id is inside the universe; id 4 is never a member at all.
        assert!(!plan.is_member(5, 1));
        assert!(plan.is_member(5, 2));
        assert!(!plan.members_at(4, 2).contains(&4));

        // Founding members without a leave schedule stay forever.
        assert!(plan.is_member(0, u64::MAX));
    }

    #[test]
    fn churn_is_orthogonal_to_crashes() {
        let plan = FaultPlan::new(0).join_at(4, 1).crash(4);
        // Member from round 1 but crashed: in the member set, never
        // delivering.
        assert!(plan.is_member(4, 1));
        assert!(plan.members_at(4, 1).contains(&4));
        assert!(!plan.replica_arrives(1, 0, 4, 0));
    }

    #[test]
    fn straggle_clamped_and_drop_rate_clamped() {
        let plan = FaultPlan::new(0).straggle(0, 0.25).drop_rate(1.5);
        assert_eq!(plan.straggle_factor(0), 1.0);
        assert_eq!(plan.replica_drop_rate(), 1.0);
    }
}
