//! Synchronous parameter-server cluster simulation.
//!
//! The paper runs PyTorch + MPICH on EC2; this crate simulates the same
//! synchronous training protocol in-process (DESIGN.md §2 documents the
//! substitution):
//!
//! * [`Cluster`] executes one *computation round*: fan the current model
//!   out to every worker, have each worker compute the gradient of every
//!   file assigned to it by the [`Assignment`](byz_assign::Assignment) graph, and gather the
//!   per-file replica gradients back — either sequentially (bitwise
//!   deterministic) or fanned out onto the persistent `byz-kernel` thread
//!   pool ([`ExecutionMode::Threaded`]), which produces bit-identical
//!   results because the worker→batch partition is shape-derived.
//! * [`CostModel`] converts the round's measured compute times plus the
//!   cluster's communication geometry (model broadcast, `l` gradient
//!   uploads per worker, PS aggregation passes) into the per-iteration
//!   computation/communication/aggregation split reported in the paper's
//!   Figure 12.
//!
//! Byzantine behaviour is *not* injected here: the engine always computes
//! true gradients, and the training protocol (in the `byzshield` crate)
//! replaces returns from Byzantine workers afterwards. This mirrors the
//! omniscient attack model — attackers know everything the honest cluster
//! computed — and keeps the substrate reusable.
//!
//! *Benign* faults, by contrast, **are** injected here: a [`FaultPlan`]
//! deterministically marks workers crashed, stragglers (latency
//! multipliers consumed by [`CostModel::estimate_faulty`]), or
//! message-droppers, and
//! [`Cluster::compute_round_faulty`] produces the resulting *partial*
//! replica sets. The degraded-quorum voting over those partial sets lives
//! in `byz-aggregate::quorum_vote` and is shared with the `byz-wire`
//! transport.

mod arena;
mod engine;
mod fault;
mod timing;

pub use arena::{ArenaRound, GradientArena};
pub use engine::{Cluster, ComputedRound, ExecutionMode, WorkerCompute};
pub use fault::{ClusterError, FaultPlan};
pub use timing::{CostModel, IterationTimeEstimate, PhaseTimings, RetryPolicy};
