//! MOLS-based task assignment (paper Algorithm 2).

use crate::{Assignment, AssignmentError, MolsFamily, SchemeKind};
use byz_graph::BipartiteGraph;

/// Builder for the MOLS-based placement of paper Section 4.1.2.
///
/// The batch is partitioned into `f = l²` files arranged on an `l × l`
/// grid. For each of the `r` MOLS `L_{k+1}` and each symbol `s`, worker
/// `U_{k·l + s}` receives the files in the cells of `L_{k+1}` holding
/// symbol `s`. This yields `K = r·l` workers each loaded with `l` files,
/// every file replicated `r` times.
#[derive(Debug, Clone)]
pub struct MolsAssignment {
    mols: MolsFamily,
    replication: usize,
}

impl MolsAssignment {
    /// Creates the builder for degree `l` (prime power) and replication
    /// `r`.
    ///
    /// The ByzShield analysis (Lemma 2) requires `2 < r < l`; we also
    /// require odd `r` so the majority vote cannot tie (paper Section 2).
    ///
    /// # Errors
    ///
    /// * [`AssignmentError::DegreeNotPrimePower`] for invalid `l`;
    /// * [`AssignmentError::ReplicationOutOfRange`] unless `2 < r < l`;
    /// * [`AssignmentError::ReplicationNotOdd`] for even `r`.
    pub fn new(l: u64, r: usize) -> Result<Self, AssignmentError> {
        if r <= 2 || r as u64 >= l {
            return Err(AssignmentError::ReplicationOutOfRange {
                replication: r,
                min: 3,
                max: l.saturating_sub(1) as usize,
            });
        }
        if r.is_multiple_of(2) {
            return Err(AssignmentError::ReplicationNotOdd(r));
        }
        let mols = MolsFamily::construct(l, r)?;
        Ok(MolsAssignment {
            mols,
            replication: r,
        })
    }

    /// The MOLS family driving the placement.
    pub fn mols(&self) -> &MolsFamily {
        &self.mols
    }

    /// Materializes the assignment graph (Algorithm 2).
    pub fn build(&self) -> Assignment {
        let l = self.mols.degree();
        let r = self.replication;
        let num_workers = r * l;
        let num_files = l * l;
        let mut graph = BipartiteGraph::new(num_workers, num_files);
        for (k, square) in self.mols.squares().iter().enumerate() {
            for s in 0..l as u64 {
                let worker = k * l + s as usize;
                for (i, j) in square.cells_with_symbol(s) {
                    let file = i * l + j;
                    graph
                        .add_edge(worker, file)
                        .expect("indices in range by construction");
                }
            }
        }
        Assignment::from_parts(SchemeKind::Mols, graph, l, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper Table 2: the complete file allocation for l = 5, r = 3.
    #[test]
    fn table2_full_allocation() {
        let a = MolsAssignment::new(5, 3).unwrap().build();
        let expected: [&[usize]; 15] = [
            // Table 2(a): 1st replica (L1).
            &[0, 9, 13, 17, 21],
            &[1, 5, 14, 18, 22],
            &[2, 6, 10, 19, 23],
            &[3, 7, 11, 15, 24],
            &[4, 8, 12, 16, 20],
            // Table 2(b): 2nd replica (L2).
            &[0, 8, 11, 19, 22],
            &[1, 9, 12, 15, 23],
            &[2, 5, 13, 16, 24],
            &[3, 6, 14, 17, 20],
            &[4, 7, 10, 18, 21],
            // Table 2(c): 3rd replica (L3).
            &[0, 7, 14, 16, 23],
            &[1, 8, 10, 17, 24],
            &[2, 9, 11, 18, 20],
            &[3, 5, 12, 19, 21],
            &[4, 6, 13, 15, 22],
        ];
        for (worker, files) in expected.iter().enumerate() {
            assert_eq!(a.graph().files_of(worker), *files, "worker U{worker}");
        }
    }

    #[test]
    fn parameters_and_biregularity() {
        let a = MolsAssignment::new(7, 5).unwrap().build();
        assert_eq!(a.num_workers(), 35);
        assert_eq!(a.num_files(), 49);
        assert_eq!(a.load(), 7);
        assert_eq!(a.replication(), 5);
        assert!(a.graph().is_biregular());
    }

    /// Same-LS workers share no files; cross-LS workers share exactly one
    /// (consequences of Definitions 1 and 2 noted after Example 1).
    #[test]
    fn pairwise_intersection_structure() {
        let a = MolsAssignment::new(5, 3).unwrap().build();
        let l = 5;
        for u in 0..a.num_workers() {
            for v in (u + 1)..a.num_workers() {
                let fu = a.graph().files_of(u);
                let fv = a.graph().files_of(v);
                let common = fu.iter().filter(|x| fv.contains(x)).count();
                if u / l == v / l {
                    assert_eq!(common, 0, "same-class workers {u},{v} share a file");
                } else {
                    assert_eq!(
                        common, 1,
                        "cross-class workers {u},{v} share {common} files"
                    );
                }
            }
        }
    }

    /// Lemma 2: the MOLS graph has spectrum {(1,1), (1/r, r(l−1)), (0, r−1)}.
    #[test]
    fn lemma2_spectrum() {
        let a = MolsAssignment::new(5, 3).unwrap().build();
        let clusters = a.graph().clustered_spectrum(1e-6).unwrap();
        assert_eq!(clusters.len(), 3);
        let (e0, m0) = clusters[0];
        let (e1, m1) = clusters[1];
        let (e2, m2) = clusters[2];
        assert!((e0 - 1.0).abs() < 1e-9);
        assert_eq!(m0, 1);
        assert!((e1 - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(m1, 3 * (5 - 1));
        assert!(e2.abs() < 1e-9);
        assert_eq!(m2, 3 - 1);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(matches!(
            MolsAssignment::new(5, 2),
            Err(AssignmentError::ReplicationOutOfRange { .. })
        ));
        assert!(matches!(
            MolsAssignment::new(5, 5),
            Err(AssignmentError::ReplicationOutOfRange { .. })
        ));
        assert_eq!(
            MolsAssignment::new(9, 4).unwrap_err(),
            AssignmentError::ReplicationNotOdd(4)
        );
        assert_eq!(
            MolsAssignment::new(10, 3).unwrap_err(),
            AssignmentError::DegreeNotPrimePower(10)
        );
    }

    /// Prime-power (non-prime) degrees work: l = 9 = 3², r = 5.
    #[test]
    fn prime_power_degree() {
        let a = MolsAssignment::new(9, 5).unwrap().build();
        assert_eq!(a.num_workers(), 45);
        assert_eq!(a.num_files(), 81);
        assert!(a.graph().is_biregular());
        let mu1 = a.second_eigenvalue().unwrap();
        assert!((mu1 - 0.2).abs() < 1e-9, "µ₁ = {mu1}, expected 1/r = 0.2");
    }
}
