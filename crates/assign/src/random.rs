//! Uniform random replication placement (baseline for ablations).

use crate::{Assignment, AssignmentError, SchemeKind};
use byz_graph::BipartiteGraph;
use rand::seq::SliceRandom;
use rand::Rng;

/// Builder for a random biregular placement: each of the `f` files is
/// assigned to `r` distinct workers chosen so that every worker ends up
/// with exactly `l = f·r/K` files.
///
/// This is the "random assignment" whose *average-case* robustness DETOX's
/// guarantees lean on; ByzShield's point is that worst-case attacks defeat
/// placements without engineered expansion.
#[derive(Debug, Clone)]
pub struct RandomAssignment {
    num_workers: usize,
    num_files: usize,
    replication: usize,
}

impl RandomAssignment {
    /// Creates the builder.
    ///
    /// # Errors
    ///
    /// Returns [`AssignmentError::InfeasibleRandom`] unless `r ≤ K` and
    /// `K | f·r` (needed for exact biregularity), and
    /// [`AssignmentError::ReplicationNotOdd`] for even `r`.
    pub fn new(
        num_workers: usize,
        num_files: usize,
        replication: usize,
    ) -> Result<Self, AssignmentError> {
        if replication == 0
            || replication > num_workers
            || !(num_files * replication).is_multiple_of(num_workers)
        {
            return Err(AssignmentError::InfeasibleRandom {
                workers: num_workers,
                files: num_files,
                replication,
            });
        }
        if replication.is_multiple_of(2) {
            return Err(AssignmentError::ReplicationNotOdd(replication));
        }
        Ok(RandomAssignment {
            num_workers,
            num_files,
            replication,
        })
    }

    /// Materializes a random placement using the supplied RNG.
    ///
    /// Uses an edge-coloring style construction: a pool with `l` copies of
    /// each worker is shuffled and dealt to files `r` at a time; collisions
    /// (a file receiving the same worker twice) are repaired by swapping
    /// with later slots, retrying with fresh shuffles in the rare case no
    /// repair exists.
    pub fn build<R: Rng + ?Sized>(&self, rng: &mut R) -> Assignment {
        let load = self.num_files * self.replication / self.num_workers;
        'retry: loop {
            let mut pool: Vec<usize> = (0..self.num_workers)
                .flat_map(|w| std::iter::repeat_n(w, load))
                .collect();
            pool.shuffle(rng);

            let mut graph = BipartiteGraph::new(self.num_workers, self.num_files);
            for file in 0..self.num_files {
                let base = file * self.replication;
                for slot in 0..self.replication {
                    let idx = base + slot;
                    // Ensure pool[idx] is distinct from earlier picks for
                    // this file; swap forward if not.
                    let taken = &pool[base..idx];
                    if taken.contains(&pool[idx]) {
                        let Some(swap) = (idx + 1..pool.len()).find(|&j| !taken.contains(&pool[j]))
                        else {
                            continue 'retry;
                        };
                        pool.swap(idx, swap);
                    }
                    graph
                        .add_edge(pool[idx], file)
                        .expect("indices in range by construction");
                }
            }
            return Assignment::from_parts(SchemeKind::Random, graph, load, self.replication);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn produces_biregular_graph() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let a = RandomAssignment::new(15, 25, 3).unwrap().build(&mut rng);
            assert_eq!(a.num_workers(), 15);
            assert_eq!(a.num_files(), 25);
            assert_eq!(a.graph().left_degree(), Some(5));
            assert_eq!(a.graph().right_degree(), Some(3));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = RandomAssignment::new(15, 25, 3)
            .unwrap()
            .build(&mut StdRng::seed_from_u64(42));
        let b = RandomAssignment::new(15, 25, 3)
            .unwrap()
            .build(&mut StdRng::seed_from_u64(42));
        assert_eq!(a.graph(), b.graph());
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(matches!(
            RandomAssignment::new(15, 24, 3),
            Err(AssignmentError::InfeasibleRandom { .. })
        ));
        assert!(matches!(
            RandomAssignment::new(2, 4, 3),
            Err(AssignmentError::InfeasibleRandom { .. })
        ));
        assert_eq!(
            RandomAssignment::new(10, 20, 2).unwrap_err(),
            AssignmentError::ReplicationNotOdd(2)
        );
    }
}
