//! Redundant task-assignment schemes for Byzantine-robust training.
//!
//! This crate implements every worker–file placement studied in the
//! ByzShield paper:
//!
//! * [`MolsAssignment`] — Algorithm 2: files laid out on an `l × l` grid,
//!   workers populated from `r` mutually orthogonal Latin squares
//!   (Section 4.1). Requires prime-power `l` and `r ≤ l − 1`.
//! * [`RamanujanAssignment`] — the array-code Ramanujan bigraph
//!   construction of Section 4.2.1 (both Case 1 `m < s` and Case 2
//!   `m ≥ s, s | m`).
//! * [`FrcAssignment`] — the Fractional Repetition Code grouping used by
//!   DRACO and DETOX (Section 5.3.1): workers split into `K/r` groups, all
//!   workers of a group replicate the same file.
//! * [`RandomAssignment`] — a uniform random `r`-replication placement
//!   baseline.
//!
//! All schemes produce an [`Assignment`]: a biregular
//! [`BipartiteGraph`](byz_graph::BipartiteGraph)
//! plus the `(K, f, l, r)` system parameters, ready for distortion
//! analysis and cluster simulation.
//!
//! # Example
//!
//! ```
//! use byz_assign::{Assignment, MolsAssignment, SchemeKind};
//!
//! // The paper's Example 1: K = 15 workers, l = 5, r = 3, f = 25 files.
//! let a = MolsAssignment::new(5, 3).unwrap().build();
//! assert_eq!(a.num_workers(), 15);
//! assert_eq!(a.num_files(), 25);
//! assert_eq!(a.load(), 5);
//! assert_eq!(a.replication(), 3);
//! assert_eq!(a.kind(), SchemeKind::Mols);
//! // Worker U0 stores exactly the files from paper Table 2(a).
//! assert_eq!(a.graph().files_of(0), &[0, 9, 13, 17, 21]);
//! ```

mod dynamic;
mod frc;
mod latin;
mod mols;
mod ramanujan;
mod random;
mod repair;
mod scheme;

pub use dynamic::{DynamicAssignment, MembershipPatch};
pub use frc::FrcAssignment;
pub use latin::{LatinSquare, MolsFamily};
pub use mols::MolsAssignment;
pub use ramanujan::{RamanujanAssignment, RamanujanCase};
pub use random::RandomAssignment;
pub use repair::{reassign_quarantined, RepairedAssignment};
pub use scheme::{Assignment, AssignmentError, SchemeKind};
