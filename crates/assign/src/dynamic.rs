//! Churn-driven dynamic assignment: elastic membership over a
//! structured placement.
//!
//! [`reassign_quarantined`](crate::reassign_quarantined) patches a
//! placement once, for one quarantine set. Training under *churn* needs
//! more: workers leave mid-run (gracefully or by quarantine), brand-new
//! workers join, and the placement must keep every file at the
//! replication factor `r` the voting stage depends on while spreading
//! load onto the newcomers. [`DynamicAssignment`] is that layer.
//!
//! # Canonical realization
//!
//! The realized placement is a *pure function of the membership sets*:
//! given the base assignment, the set of departed workers, and the set
//! of joiners, [`DynamicAssignment`] deterministically derives the
//! current graph from scratch —
//!
//! 1. founding members keep their base files; departed workers lose all
//!    edges; joiners start empty;
//! 2. **repair**: every file below `r` replicas is re-replicated onto
//!    the least-loaded member not already holding it (ties toward the
//!    smallest worker id), files in ascending order;
//! 3. **rebalance**: each joiner (ascending id) takes over files from
//!    the most-loaded members (ties toward the smallest id, smallest
//!    movable file first) until it reaches the base per-worker load `l`
//!    or no donor is strictly heavier — moves preserve each file's
//!    replica count.
//!
//! Because the result depends only on the *sets*, any permutation of the
//! same join/leave events — and any grouping of them into batches —
//! lands on the identical graph. That is what makes churn chaos runs
//! bit-reproducible and is pinned by the property tests in
//! `crates/assign/tests/`.
//!
//! The repaired placement is generally not biregular, so the spectral
//! ε̂ bound of the original scheme no longer applies; the realized graph
//! is re-scored directly by `byz-distortion`'s graph-level counters
//! (`count_distorted_graph`).

use crate::{Assignment, RepairedAssignment};
use byz_graph::BipartiteGraph;
use std::collections::BTreeSet;

/// The edge-level diff produced by one membership change.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MembershipPatch {
    /// Edges `(worker, file)` present after the change but not before,
    /// ascending.
    pub added: Vec<(usize, usize)>,
    /// Edges `(worker, file)` present before the change but not after,
    /// ascending.
    pub removed: Vec<(usize, usize)>,
    /// Files left below the replication factor because too few members
    /// survive. Empty whenever `|members| ≥ r`.
    pub under_replicated: Vec<usize>,
}

impl MembershipPatch {
    /// Whether the change moved any replica at all.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }
}

/// An elastic placement: a base [`Assignment`] plus the set of departed
/// workers and joiners, realized on demand into a repaired
/// [`BipartiteGraph`].
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicAssignment {
    base: Assignment,
    departed: BTreeSet<usize>,
    joiners: BTreeSet<usize>,
    graph: BipartiteGraph,
    under_replicated: Vec<usize>,
}

impl DynamicAssignment {
    /// Wraps a base assignment with all founding workers present.
    pub fn new(base: Assignment) -> Self {
        let graph = base.graph().clone();
        DynamicAssignment {
            base,
            departed: BTreeSet::new(),
            joiners: BTreeSet::new(),
            graph,
            under_replicated: Vec::new(),
        }
    }

    /// The base (pre-churn) assignment.
    pub fn base(&self) -> &Assignment {
        &self.base
    }

    /// The realized worker–file graph for the current membership.
    /// Departed workers have no edges; joiners hold their rebalanced
    /// share.
    pub fn graph(&self) -> &BipartiteGraph {
        &self.graph
    }

    /// The size of the worker-id universe: founding ids plus every
    /// joiner ever admitted (graph capacity).
    pub fn universe(&self) -> usize {
        self.graph.num_workers()
    }

    /// Whether `worker` is currently a member.
    pub fn is_member(&self, worker: usize) -> bool {
        !self.departed.contains(&worker)
            && (worker < self.base.num_workers() || self.joiners.contains(&worker))
    }

    /// Current members, ascending.
    pub fn members(&self) -> Vec<usize> {
        (0..self.universe())
            .filter(|&w| self.is_member(w))
            .collect()
    }

    /// The replication factor the repair targets.
    pub fn replication(&self) -> usize {
        self.base.replication()
    }

    /// Number of files (unchanged by churn).
    pub fn num_files(&self) -> usize {
        self.base.num_files()
    }

    /// The base per-worker load `l` — the rebalance target for joiners.
    pub fn target_load(&self) -> usize {
        self.base.load()
    }

    /// Files currently below the replication factor, ascending. Empty
    /// whenever at least `r` members survive.
    pub fn under_replicated(&self) -> &[usize] {
        &self.under_replicated
    }

    /// Whether every file holds its full `r` replicas.
    pub fn is_fully_replicated(&self) -> bool {
        self.under_replicated.is_empty()
    }

    /// Files held by `worker` in the realized placement.
    pub fn files_of(&self, worker: usize) -> &[usize] {
        self.graph.files_of(worker)
    }

    /// Current load of `worker` (0 for non-members).
    pub fn load_of(&self, worker: usize) -> usize {
        self.graph.files_of(worker).len()
    }

    /// The heaviest member load.
    pub fn max_load(&self) -> usize {
        self.members()
            .into_iter()
            .map(|w| self.load_of(w))
            .max()
            .unwrap_or(0)
    }

    /// The lightest member load.
    pub fn min_member_load(&self) -> usize {
        self.members()
            .into_iter()
            .map(|w| self.load_of(w))
            .min()
            .unwrap_or(0)
    }

    /// `max_load − min_member_load`: how uneven the realized placement
    /// is. The greedy repair and rebalance keep this small (pinned by
    /// the property tests).
    pub fn load_skew(&self) -> usize {
        self.max_load() - self.min_member_load()
    }

    /// Admits `worker` as a member: a founding worker rejoins, or a new
    /// id (possibly beyond the founding universe) joins with an empty
    /// file set and receives its rebalanced share. Admitting a current
    /// member is a no-op.
    pub fn join(&mut self, worker: usize) -> MembershipPatch {
        self.departed.remove(&worker);
        if worker >= self.base.num_workers() {
            self.joiners.insert(worker);
        }
        self.realize()
    }

    /// Removes `worker` from membership — graceful leave and quarantine
    /// are the same placement event. Its files are re-replicated onto
    /// the surviving members. Removing a non-member is a no-op.
    pub fn depart(&mut self, worker: usize) -> MembershipPatch {
        self.departed.insert(worker);
        self.joiners.remove(&worker);
        self.realize()
    }

    /// Applies a batch of membership changes (leaves then joins, though
    /// the order is irrelevant — the realization depends only on the
    /// final sets) with a single repair pass.
    pub fn apply(&mut self, joins: &[usize], leaves: &[usize]) -> MembershipPatch {
        for &w in leaves {
            self.departed.insert(w);
            self.joiners.remove(&w);
        }
        for &w in joins {
            self.departed.remove(&w);
            if w >= self.base.num_workers() {
                self.joiners.insert(w);
            }
        }
        self.realize()
    }

    /// Recomputes the canonical realized graph for the current
    /// membership sets and returns the edge diff against the previous
    /// realization.
    fn realize(&mut self) -> MembershipPatch {
        let k = self.base.num_workers();
        let f = self.base.num_files();
        let r = self.base.replication();
        let l = self.base.load();
        let universe = self
            .joiners
            .iter()
            .next_back()
            .map(|&w| w + 1)
            .unwrap_or(0)
            .max(k)
            .max(self.graph.num_workers());
        let members: Vec<usize> = (0..universe)
            .filter(|&w| !self.departed.contains(&w) && (w < k || self.joiners.contains(&w)))
            .collect();

        // 1. Surviving base edges.
        let mut holders: Vec<Vec<usize>> = vec![Vec::new(); f];
        let mut loads = vec![0usize; universe];
        for &w in &members {
            if w >= k {
                continue;
            }
            for &file in self.base.graph().files_of(w) {
                holders[file].push(w);
                loads[w] += 1;
            }
        }

        // 2. Repair every deficient file on the least-loaded members.
        let mut under_replicated = Vec::new();
        for (file, held) in holders.iter_mut().enumerate() {
            while held.len() < r {
                let candidate = members
                    .iter()
                    .copied()
                    .filter(|w| !held.contains(w))
                    .min_by_key(|&w| (loads[w], w));
                match candidate {
                    Some(w) => {
                        held.push(w);
                        loads[w] += 1;
                    }
                    None => {
                        under_replicated.push(file);
                        break;
                    }
                }
            }
        }

        // 3. Rebalance onto joiners: move files off the heaviest members
        // until the joiner reaches the base load or no donor is heavier
        // than it. Moves keep per-file replica counts. Each move grows
        // the joiner, so the loop terminates in ≤ l steps, and taking
        // only from strictly-heavier donors self-limits at the ceiling
        // of the average load.
        for &j in &self.joiners {
            if self.departed.contains(&j) {
                continue;
            }
            while loads[j] < l {
                let donor = members
                    .iter()
                    .copied()
                    .filter(|&w| w != j && loads[w] > loads[j])
                    .filter(|&w| {
                        holders
                            .iter()
                            .any(|held| held.contains(&w) && !held.contains(&j))
                    })
                    .max_by_key(|&w| (loads[w], std::cmp::Reverse(w)));
                let Some(donor) = donor else { break };
                let file = holders
                    .iter()
                    .position(|held| held.contains(&donor) && !held.contains(&j))
                    .expect("donor filter guarantees a movable file");
                holders[file].retain(|&w| w != donor);
                holders[file].push(j);
                loads[donor] -= 1;
                loads[j] += 1;
            }
        }

        let mut graph = BipartiteGraph::new(universe, f);
        for (file, held) in holders.iter().enumerate() {
            for &w in held {
                graph
                    .add_edge(w, file)
                    .expect("member indices are in range by construction");
            }
        }

        let patch = diff_graphs(&self.graph, &graph, under_replicated.clone());
        self.graph = graph;
        self.under_replicated = under_replicated;
        patch
    }
}

/// Edge diff between two realizations (capacities may differ).
fn diff_graphs(
    before: &BipartiteGraph,
    after: &BipartiteGraph,
    under_replicated: Vec<usize>,
) -> MembershipPatch {
    let edges = |g: &BipartiteGraph| -> BTreeSet<(usize, usize)> {
        (0..g.num_workers())
            .flat_map(|w| g.files_of(w).iter().map(move |&file| (w, file)))
            .collect()
    };
    let old = edges(before);
    let new = edges(after);
    MembershipPatch {
        added: new.difference(&old).copied().collect(),
        removed: old.difference(&new).copied().collect(),
        under_replicated,
    }
}

impl From<&DynamicAssignment> for RepairedAssignment {
    /// Views the current realization in the legacy repaired-placement
    /// shape (the one `reassign_quarantined` produces).
    fn from(dynamic: &DynamicAssignment) -> RepairedAssignment {
        RepairedAssignment::from_parts(
            dynamic.graph.clone(),
            Vec::new(),
            dynamic.under_replicated.clone(),
            dynamic.replication(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MolsAssignment;

    fn mols() -> Assignment {
        // K = 15, f = 25, l = 5, r = 3.
        MolsAssignment::new(5, 3).unwrap().build()
    }

    #[test]
    fn fresh_dynamic_matches_base() {
        let base = mols();
        let dynamic = DynamicAssignment::new(base.clone());
        assert_eq!(dynamic.graph(), base.graph());
        assert_eq!(dynamic.members(), (0..15).collect::<Vec<_>>());
        assert!(dynamic.is_fully_replicated());
        assert_eq!(dynamic.load_skew(), 0);
    }

    #[test]
    fn depart_matches_reassign_quarantined() {
        let base = mols();
        let mut dynamic = DynamicAssignment::new(base.clone());
        let patch = dynamic.depart(3);
        let repaired = crate::reassign_quarantined(&base, &[3]);
        assert_eq!(dynamic.graph(), repaired.graph());
        assert_eq!(patch.removed.len(), base.load());
        assert_eq!(patch.added.len(), base.load());
        assert!(dynamic.is_fully_replicated());
    }

    #[test]
    fn join_extends_universe_and_takes_load() {
        let base = mols();
        let mut dynamic = DynamicAssignment::new(base.clone());
        let patch = dynamic.join(15);
        assert_eq!(dynamic.universe(), 16);
        assert!(dynamic.is_member(15));
        // The joiner reached the base load by taking over replicas, and
        // every file still has exactly r holders.
        assert_eq!(dynamic.load_of(15), base.load());
        assert!(patch.added.iter().all(|&(w, _)| w == 15));
        assert_eq!(patch.added.len(), patch.removed.len());
        for file in 0..base.num_files() {
            assert_eq!(dynamic.graph().workers_of(file).len(), 3, "file {file}");
        }
        assert!(dynamic.load_skew() <= 1);
    }

    #[test]
    fn batch_apply_equals_event_sequence_any_order() {
        let base = mols();
        let mut a = DynamicAssignment::new(base.clone());
        a.depart(2);
        a.join(15);
        a.depart(7);
        let mut b = DynamicAssignment::new(base.clone());
        b.depart(7);
        b.depart(2);
        b.join(15);
        let mut c = DynamicAssignment::new(base);
        c.apply(&[15], &[2, 7]);
        assert_eq!(a.graph(), b.graph(), "event order must not matter");
        assert_eq!(a.graph(), c.graph(), "batching must not matter");
    }

    #[test]
    fn rejoin_restores_membership() {
        let base = mols();
        let mut dynamic = DynamicAssignment::new(base.clone());
        dynamic.depart(4);
        assert!(!dynamic.is_member(4));
        dynamic.join(4);
        assert!(dynamic.is_member(4));
        // Canonical realization: rejoining every departed worker lands
        // back on the base placement exactly.
        assert_eq!(dynamic.graph().files_of(4), base.graph().files_of(4));
        assert_eq!(dynamic.graph(), base.graph());
    }

    #[test]
    fn mass_departure_reports_under_replication() {
        let base = mols();
        let mut dynamic = DynamicAssignment::new(base.clone());
        let leaves: Vec<usize> = (0..13).collect();
        dynamic.apply(&[], &leaves);
        assert!(!dynamic.is_fully_replicated());
        assert_eq!(dynamic.under_replicated().len(), base.num_files());
        for file in 0..base.num_files() {
            assert_eq!(dynamic.graph().workers_of(file), &[13, 14]);
        }
        // A joiner repairs it back to full replication.
        dynamic.join(15);
        assert!(dynamic.is_fully_replicated());
    }

    #[test]
    fn joiner_that_departs_leaves_no_trace() {
        let base = mols();
        let mut dynamic = DynamicAssignment::new(base.clone());
        dynamic.join(20);
        dynamic.depart(20);
        assert!(!dynamic.is_member(20));
        assert!(dynamic.graph().files_of(20).is_empty());
        // All base edges restored.
        for w in 0..15 {
            assert_eq!(dynamic.graph().files_of(w), base.graph().files_of(w));
        }
    }
}
