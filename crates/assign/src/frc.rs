//! Fractional Repetition Code placement (DRACO / DETOX baseline,
//! paper Section 5.3.1).

use crate::{Assignment, AssignmentError, SchemeKind};
use byz_graph::BipartiteGraph;

/// Builder for the FRC grouping used by DRACO and DETOX: the `K` workers
/// are split into `K/r` groups of `r`; every worker in group `g`
/// processes the single file `g`. Each worker therefore has load `l = 1`
/// and each file replication `r`.
///
/// To compare at equal *total* file counts with ByzShield, use
/// [`FrcAssignment::with_files_per_group`], which gives every group
/// `files_per_group` distinct files (all replicated across the whole
/// group); the vote-group structure — the quantity that determines FRC's
/// worst-case distortion `ε̂ = ⌊q/r'⌋·r/K` — is unchanged.
#[derive(Debug, Clone)]
pub struct FrcAssignment {
    num_workers: usize,
    replication: usize,
    files_per_group: usize,
}

impl FrcAssignment {
    /// Creates the standard FRC placement: one file per group.
    ///
    /// # Errors
    ///
    /// * [`AssignmentError::GroupSizeDoesNotDivide`] unless `r | K`;
    /// * [`AssignmentError::ReplicationNotOdd`] for even `r`.
    pub fn new(num_workers: usize, replication: usize) -> Result<Self, AssignmentError> {
        Self::with_files_per_group(num_workers, replication, 1)
    }

    /// Creates an FRC placement where each group holds `files_per_group`
    /// distinct files.
    ///
    /// # Errors
    ///
    /// Same as [`FrcAssignment::new`]; additionally rejects
    /// `files_per_group == 0` via
    /// [`AssignmentError::ReplicationOutOfRange`].
    pub fn with_files_per_group(
        num_workers: usize,
        replication: usize,
        files_per_group: usize,
    ) -> Result<Self, AssignmentError> {
        if replication == 0 || !num_workers.is_multiple_of(replication) {
            return Err(AssignmentError::GroupSizeDoesNotDivide {
                workers: num_workers,
                replication,
            });
        }
        if replication.is_multiple_of(2) {
            return Err(AssignmentError::ReplicationNotOdd(replication));
        }
        if files_per_group == 0 {
            return Err(AssignmentError::ReplicationOutOfRange {
                replication: 0,
                min: 1,
                max: usize::MAX,
            });
        }
        Ok(FrcAssignment {
            num_workers,
            replication,
            files_per_group,
        })
    }

    /// Number of vote groups `K / r`.
    pub fn num_groups(&self) -> usize {
        self.num_workers / self.replication
    }

    /// Materializes the assignment graph.
    pub fn build(&self) -> Assignment {
        let groups = self.num_groups();
        let num_files = groups * self.files_per_group;
        let mut graph = BipartiteGraph::new(self.num_workers, num_files);
        for worker in 0..self.num_workers {
            let group = worker / self.replication;
            for t in 0..self.files_per_group {
                let file = group * self.files_per_group + t;
                graph
                    .add_edge(worker, file)
                    .expect("indices in range by construction");
            }
        }
        Assignment::from_parts(
            SchemeKind::Frc,
            graph,
            self.files_per_group,
            self.replication,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_grouping() {
        let a = FrcAssignment::new(15, 3).unwrap().build();
        assert_eq!(a.num_workers(), 15);
        assert_eq!(a.num_files(), 5);
        assert_eq!(a.load(), 1);
        assert_eq!(a.replication(), 3);
        // Workers 0..3 form group 0 and all hold file 0.
        assert_eq!(a.graph().workers_of(0), &[0, 1, 2]);
        assert_eq!(a.graph().files_of(4), &[1]);
    }

    #[test]
    fn multi_file_groups() {
        let a = FrcAssignment::with_files_per_group(15, 3, 5)
            .unwrap()
            .build();
        assert_eq!(a.num_files(), 25);
        assert_eq!(a.load(), 5);
        // Group 0's workers hold files 0..5.
        assert_eq!(a.graph().files_of(0), &[0, 1, 2, 3, 4]);
        assert_eq!(a.graph().files_of(2), &[0, 1, 2, 3, 4]);
        assert!(a.graph().is_biregular());
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(matches!(
            FrcAssignment::new(16, 3),
            Err(AssignmentError::GroupSizeDoesNotDivide { .. })
        ));
        assert_eq!(
            FrcAssignment::new(16, 4).unwrap_err(),
            AssignmentError::ReplicationNotOdd(4)
        );
        assert!(FrcAssignment::with_files_per_group(15, 3, 0).is_err());
    }

    /// FRC's expansion is poor: its graph disconnects into K/r components,
    /// so µ₁ = 1 (no spectral gap). This is exactly why an omniscient
    /// adversary defeats it.
    #[test]
    fn frc_has_no_spectral_gap() {
        let a = FrcAssignment::new(15, 3).unwrap().build();
        let mu1 = a.second_eigenvalue().unwrap();
        assert!((mu1 - 1.0).abs() < 1e-9, "µ₁ = {mu1}");
    }
}
