//! Greedy placement repair after quarantining workers.
//!
//! When the reputation layer (`byz-reputation`) pulls workers out of
//! service mid-training, their file replicas vanish and the affected
//! files drop below the replication factor `r` — exactly the redundancy
//! the voting stage depends on. [`reassign_quarantined`] patches the
//! placement: it removes every quarantined worker's edges and greedily
//! re-replicates each deficient file onto the least-loaded surviving
//! workers.
//!
//! The repaired placement is generally *not* biregular (the survivors
//! absorb extra load and a MOLS/Ramanujan structure cannot be preserved
//! by a local patch), so the result is a raw
//! [`BipartiteGraph`] plus bookkeeping — not an [`Assignment`].
//! The spectral guarantees of the original scheme no longer apply; what
//! the patch preserves is the *voting* guarantee: every file keeps `r`
//! replicas whenever the surviving capacity allows.
//!
//! The procedure is deterministic: files are processed in ascending
//! order and ties between equally-loaded candidates break toward the
//! smallest worker id, so every rerun (and every engine mode) produces
//! the identical graph.

use crate::Assignment;
use byz_graph::BipartiteGraph;
use std::collections::BTreeSet;

/// The placement produced by [`reassign_quarantined`].
#[derive(Debug, Clone, PartialEq)]
pub struct RepairedAssignment {
    graph: BipartiteGraph,
    added: Vec<(usize, usize)>,
    under_replicated: Vec<usize>,
    replication: usize,
}

impl RepairedAssignment {
    /// Assembles a repaired placement from an already-realized graph —
    /// the bridge the dynamic membership layer uses to present its
    /// canonical realization in this legacy shape.
    pub(crate) fn from_parts(
        graph: BipartiteGraph,
        added: Vec<(usize, usize)>,
        under_replicated: Vec<usize>,
        replication: usize,
    ) -> Self {
        RepairedAssignment {
            graph,
            added,
            under_replicated,
            replication,
        }
    }

    /// The patched worker–file graph. Quarantined workers have no edges.
    pub fn graph(&self) -> &BipartiteGraph {
        &self.graph
    }

    /// Edges `(worker, file)` added by the repair, in the deterministic
    /// order they were chosen.
    pub fn added_edges(&self) -> &[(usize, usize)] {
        &self.added
    }

    /// Files left with fewer than `r` replicas because the surviving
    /// worker pool is too small (every survivor already holds them).
    /// Empty whenever `K − |quarantined| ≥ r`.
    pub fn under_replicated(&self) -> &[usize] {
        &self.under_replicated
    }

    /// Whether every file kept its full replication factor.
    pub fn is_fully_replicated(&self) -> bool {
        self.under_replicated.is_empty()
    }

    /// The replication factor the repair targeted.
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// The heaviest per-worker load after the repair (files per worker).
    pub fn max_load(&self) -> usize {
        (0..self.graph.num_workers())
            .map(|w| self.graph.files_of(w).len())
            .max()
            .unwrap_or(0)
    }
}

/// Removes the quarantined workers from `base`'s placement and greedily
/// restores each affected file to `replication` copies on the least-
/// loaded surviving workers (ties toward the smallest worker id).
///
/// Quarantined ids that are duplicated or out of range are ignored. If
/// *all* workers are quarantined the result is an edgeless graph with
/// every file under-replicated.
pub fn reassign_quarantined(base: &Assignment, quarantined: &[usize]) -> RepairedAssignment {
    let k = base.num_workers();
    let f = base.num_files();
    let r = base.replication();
    let out: BTreeSet<usize> = quarantined.iter().copied().filter(|&w| w < k).collect();

    // Surviving edges only.
    let mut graph = BipartiteGraph::new(k, f);
    for w in 0..k {
        if out.contains(&w) {
            continue;
        }
        for &file in base.graph().files_of(w) {
            graph
                .add_edge(w, file)
                .expect("indices copied from a valid graph");
        }
    }

    let mut loads: Vec<usize> = (0..k).map(|w| graph.files_of(w).len()).collect();
    let mut added = Vec::new();
    let mut under_replicated = Vec::new();
    for file in 0..f {
        while graph.workers_of(file).len() < r {
            // Least-loaded survivor not already holding the file,
            // smallest id on ties — strict `<` keeps the scan
            // deterministic.
            let holders = graph.workers_of(file);
            let candidate = (0..k)
                .filter(|w| !out.contains(w) && holders.binary_search(w).is_err())
                .min_by_key(|&w| (loads[w], w));
            match candidate {
                Some(w) => {
                    graph.add_edge(w, file).expect("survivor index in range");
                    loads[w] += 1;
                    added.push((w, file));
                }
                None => {
                    under_replicated.push(file);
                    break;
                }
            }
        }
    }

    RepairedAssignment {
        graph,
        added,
        under_replicated,
        replication: r,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MolsAssignment;

    fn mols() -> Assignment {
        // K = 15, f = 25, l = 5, r = 3.
        MolsAssignment::new(5, 3).unwrap().build()
    }

    #[test]
    fn no_quarantine_is_identity() {
        let base = mols();
        let repaired = reassign_quarantined(&base, &[]);
        assert_eq!(repaired.graph(), base.graph());
        assert!(repaired.added_edges().is_empty());
        assert!(repaired.is_fully_replicated());
    }

    #[test]
    fn single_quarantine_restores_full_replication() {
        let base = mols();
        let victim_files: Vec<usize> = base.graph().files_of(3).to_vec();
        let repaired = reassign_quarantined(&base, &[3]);
        assert!(repaired.is_fully_replicated());
        assert!(repaired.graph().files_of(3).is_empty());
        // Exactly one replacement edge per file the victim held.
        assert_eq!(repaired.added_edges().len(), victim_files.len());
        for file in 0..base.num_files() {
            let holders = repaired.graph().workers_of(file);
            assert_eq!(holders.len(), 3, "file {file}");
            assert!(!holders.contains(&3));
            // No duplicate edges.
            let set: BTreeSet<_> = holders.iter().collect();
            assert_eq!(set.len(), holders.len());
        }
        // Load spreads: nobody absorbs more than a couple of extras.
        assert!(repaired.max_load() <= base.load() + 2);
    }

    #[test]
    fn multi_quarantine_is_deterministic() {
        let base = mols();
        let a = reassign_quarantined(&base, &[1, 7, 12]);
        let b = reassign_quarantined(&base, &[12, 1, 7, 7]);
        assert_eq!(a, b, "order and duplicates must not matter");
        assert!(a.is_fully_replicated());
    }

    #[test]
    fn too_few_survivors_reports_under_replication() {
        let base = mols();
        // Quarantine 13 of 15 workers: 2 survivors < r = 3.
        let quarantined: Vec<usize> = (0..13).collect();
        let repaired = reassign_quarantined(&base, &quarantined);
        assert!(!repaired.is_fully_replicated());
        // Every file still gets both survivors.
        for file in 0..base.num_files() {
            assert_eq!(repaired.graph().workers_of(file), &[13, 14]);
        }
        assert_eq!(repaired.under_replicated().len(), base.num_files());
    }

    #[test]
    fn out_of_range_ids_ignored() {
        let base = mols();
        let repaired = reassign_quarantined(&base, &[99]);
        assert_eq!(repaired.graph(), base.graph());
    }
}
