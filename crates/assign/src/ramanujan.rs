//! Ramanujan bigraph task assignment via LDPC array codes
//! (paper Section 4.2.1, following Burnwal–Vidyasagar–Sinha).

use crate::{Assignment, AssignmentError, SchemeKind};
use byz_field::is_prime;
use byz_graph::BipartiteGraph;

/// Which side of the `m` vs `s` dichotomy a construction falls on (Eq. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RamanujanCase {
    /// `m < s`: `H = Bᵀ`, parameters `(K, f, l, r) = (ms, s², s, m)`.
    Case1,
    /// `m ≥ s` and `s | m`: `H = B`, parameters `(K, f, l, r) = (s², ms, m, s)`.
    Case2,
}

/// Builder for the array-code Ramanujan bigraph placement.
///
/// The construction forms the `s² × ms` block matrix
///
/// ```text
/// B = [ I  I    I    …  I        ]
///     [ I  P    P²   …  P^(m−1)  ]
///     [ I  P²   P⁴   …  P^2(m−1) ]
///     [ …                        ]
/// ```
///
/// from powers of the `s × s` cyclic-shift permutation `P`, then uses
/// `H = Bᵀ` (Case 1, `m < s`) or `H = B` (Case 2, `m ≥ s`) as the
/// worker × file bi-adjacency matrix.
#[derive(Debug, Clone)]
pub struct RamanujanAssignment {
    s: u64,
    m: u64,
    case: RamanujanCase,
}

impl RamanujanAssignment {
    /// Creates the builder from the construction parameters: prime `s` and
    /// integer `m ≥ 2`.
    ///
    /// The replication factor is `m` in Case 1 and `s` in Case 2; we
    /// require it to be odd so majority votes cannot tie.
    ///
    /// # Errors
    ///
    /// * [`AssignmentError::SNotPrime`] if `s` is composite;
    /// * [`AssignmentError::ReplicationOutOfRange`] if `m < 2`;
    /// * [`AssignmentError::SDoesNotDivideM`] in Case 2 when `s ∤ m`;
    /// * [`AssignmentError::ReplicationNotOdd`] for an even replication
    ///   factor.
    pub fn new(m: u64, s: u64) -> Result<Self, AssignmentError> {
        if !is_prime(s) {
            return Err(AssignmentError::SNotPrime(s));
        }
        if m < 2 {
            return Err(AssignmentError::ReplicationOutOfRange {
                replication: m as usize,
                min: 2,
                max: usize::MAX,
            });
        }
        let case = if m < s {
            RamanujanCase::Case1
        } else {
            if !m.is_multiple_of(s) {
                return Err(AssignmentError::SDoesNotDivideM { s, m });
            }
            RamanujanCase::Case2
        };
        let replication = match case {
            RamanujanCase::Case1 => m,
            RamanujanCase::Case2 => s,
        };
        if replication % 2 == 0 {
            return Err(AssignmentError::ReplicationNotOdd(replication as usize));
        }
        Ok(RamanujanAssignment { s, m, case })
    }

    /// Which case of Eq. (6) this instance is.
    pub fn case(&self) -> RamanujanCase {
        self.case
    }

    /// System parameters `(K, f, l, r)` per Eq. (6).
    pub fn parameters(&self) -> (usize, usize, usize, usize) {
        let (s, m) = (self.s as usize, self.m as usize);
        match self.case {
            RamanujanCase::Case1 => (m * s, s * s, s, m),
            RamanujanCase::Case2 => (s * s, m * s, m, s),
        }
    }

    /// Materializes the assignment graph.
    pub fn build(&self) -> Assignment {
        let (k, f, l, r) = self.parameters();
        let s = self.s as usize;
        let m = self.m as usize;
        let mut graph = BipartiteGraph::new(k, f);

        // Enumerate the nonzero entries of B: block (a, b) of B (for
        // a in 0..s block-rows, b in 0..m block-cols) is P^(a·b), whose
        // entry (i, j) is 1 iff j ≡ i − a·b (mod s).
        //
        // Case 2: worker = B row   = a·s + i, file = B col = b·s + j.
        // Case 1: H = Bᵀ, so worker = B col = b·s + j, file = B row = a·s + i.
        for a in 0..s {
            for b in 0..m {
                let shift = (a * b) % s;
                for i in 0..s {
                    let j = (i + s - shift) % s;
                    let (worker, file) = match self.case {
                        RamanujanCase::Case2 => (a * s + i, b * s + j),
                        RamanujanCase::Case1 => (b * s + j, a * s + i),
                    };
                    graph
                        .add_edge(worker, file)
                        .expect("indices in range by construction");
                }
            }
        }
        let kind = match self.case {
            RamanujanCase::Case1 => SchemeKind::RamanujanCase1,
            RamanujanCase::Case2 => SchemeKind::RamanujanCase2,
        };
        Assignment::from_parts(kind, graph, l, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_selection_and_parameters() {
        // m = 3 < s = 5: Case 1, (K, f, l, r) = (15, 25, 5, 3).
        let a = RamanujanAssignment::new(3, 5).unwrap();
        assert_eq!(a.case(), RamanujanCase::Case1);
        assert_eq!(a.parameters(), (15, 25, 5, 3));

        // m = 5 = s: Case 2, (K, f, l, r) = (25, 25, 5, 5) — the paper's
        // K = 25 cluster (Section 6.1).
        let b = RamanujanAssignment::new(5, 5).unwrap();
        assert_eq!(b.case(), RamanujanCase::Case2);
        assert_eq!(b.parameters(), (25, 25, 5, 5));

        // m = 10 = 2·5: Case 2 with f = 50.
        let c = RamanujanAssignment::new(10, 5);
        // r = s = 5 odd, s | m: accepted.
        assert_eq!(c.unwrap().parameters(), (25, 50, 10, 5));
    }

    #[test]
    fn rejects_bad_parameters() {
        assert_eq!(
            RamanujanAssignment::new(3, 4).unwrap_err(),
            AssignmentError::SNotPrime(4)
        );
        assert!(matches!(
            RamanujanAssignment::new(1, 5),
            Err(AssignmentError::ReplicationOutOfRange { .. })
        ));
        assert_eq!(
            RamanujanAssignment::new(7, 5).unwrap_err(),
            AssignmentError::SDoesNotDivideM { s: 5, m: 7 }
        );
        // Case 1 with even replication m = 2.
        assert_eq!(
            RamanujanAssignment::new(2, 5).unwrap_err(),
            AssignmentError::ReplicationNotOdd(2)
        );
        // Case 2 with even prime s = 2 (replication 2).
        assert_eq!(
            RamanujanAssignment::new(4, 2).unwrap_err(),
            AssignmentError::ReplicationNotOdd(2)
        );
    }

    #[test]
    fn biregularity_both_cases() {
        for (m, s) in [(3u64, 5u64), (5, 7), (5, 5), (10, 5), (3, 3)] {
            let Ok(builder) = RamanujanAssignment::new(m, s) else {
                continue;
            };
            let a = builder.build();
            let (k, f, l, r) = builder.parameters();
            assert_eq!(a.num_workers(), k);
            assert_eq!(a.num_files(), f);
            assert_eq!(a.graph().left_degree(), Some(l), "(m,s)=({m},{s})");
            assert_eq!(a.graph().right_degree(), Some(r), "(m,s)=({m},{s})");
        }
    }

    /// Lemma 2: Case 1 spectrum {(1,1), (1/r, r(l−1)), (0, r−1)} — identical
    /// to the MOLS spectrum.
    #[test]
    fn lemma2_spectrum_case1() {
        let a = RamanujanAssignment::new(3, 5).unwrap().build();
        let clusters = a.graph().clustered_spectrum(1e-6).unwrap();
        assert_eq!(clusters.len(), 3);
        assert!((clusters[0].0 - 1.0).abs() < 1e-9);
        assert_eq!(clusters[0].1, 1);
        assert!((clusters[1].0 - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(clusters[1].1, 3 * 4);
        assert!(clusters[2].0.abs() < 1e-9);
        assert_eq!(clusters[2].1, 2);
    }

    /// Lemma 2: Case 2 spectrum {(1,1), (1/r, r(r−1)), (0, r−1)}.
    #[test]
    fn lemma2_spectrum_case2() {
        let a = RamanujanAssignment::new(5, 5).unwrap().build();
        let clusters = a.graph().clustered_spectrum(1e-6).unwrap();
        assert_eq!(clusters.len(), 3);
        assert!((clusters[0].0 - 1.0).abs() < 1e-9);
        assert_eq!(clusters[0].1, 1);
        assert!((clusters[1].0 - 0.2).abs() < 1e-9);
        assert_eq!(clusters[1].1, 5 * 4);
        assert!(clusters[2].0.abs() < 1e-9);
        assert_eq!(clusters[2].1, 4);
    }

    /// The first block-column of B is a stack of identities: in Case 2 the
    /// first s files are assigned to workers {a·s + i : a} with j = i.
    #[test]
    fn identity_block_structure() {
        let a = RamanujanAssignment::new(5, 5).unwrap().build();
        // File 0 (b = 0, j = 0) is held by workers a·5 + 0 for a = 0..5.
        assert_eq!(a.graph().workers_of(0), &[0, 5, 10, 15, 20]);
    }
}
