//! Latin squares and mutually orthogonal families (paper Section 4.1.1).

use crate::AssignmentError;
use byz_field::FiniteField;
use std::fmt;

/// A Latin square of degree `l`: an `l × l` array over symbols
/// `{0, …, l−1}` in which every symbol appears exactly once per row and
/// once per column (Definition 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatinSquare {
    degree: usize,
    /// Row-major cells; `cells[i * degree + j] = L(i, j)`.
    cells: Vec<u64>,
}

impl LatinSquare {
    /// Builds a square from row-major cells, validating the Latin property.
    ///
    /// Returns `None` if the array is not a Latin square of the implied
    /// degree.
    pub fn from_cells(degree: usize, cells: Vec<u64>) -> Option<Self> {
        if cells.len() != degree * degree {
            return None;
        }
        let sq = LatinSquare { degree, cells };
        sq.is_latin().then_some(sq)
    }

    /// The canonical algebraic construction `L_α(i, j) = α·i + j` over
    /// `GF(l)` (paper Section 4.1.1). `alpha` must be a nonzero field
    /// element.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is zero or out of range — callers iterate over
    /// nonzero field elements, so this indicates a programming error.
    pub fn from_field(field: &FiniteField, alpha: u64) -> Self {
        assert!(alpha != 0, "alpha must be a nonzero field element");
        assert!(alpha < field.order(), "alpha out of range");
        let l = field.order() as usize;
        let mut cells = Vec::with_capacity(l * l);
        for i in 0..field.order() {
            for j in 0..field.order() {
                cells.push(field.add(field.mul(alpha, i), j));
            }
        }
        LatinSquare { degree: l, cells }
    }

    /// The degree `l` of the square.
    #[inline]
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// The symbol at `(row, col)`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> u64 {
        debug_assert!(row < self.degree && col < self.degree);
        self.cells[row * self.degree + col]
    }

    /// All cell coordinates `(row, col)` holding `symbol`, in row-major
    /// order. For a Latin square this always has exactly `degree` entries.
    pub fn cells_with_symbol(&self, symbol: u64) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(self.degree);
        for i in 0..self.degree {
            for j in 0..self.degree {
                if self.get(i, j) == symbol {
                    out.push((i, j));
                }
            }
        }
        out
    }

    /// Checks the Latin property: each symbol exactly once per row and per
    /// column, symbols drawn from `{0, …, l−1}`.
    pub fn is_latin(&self) -> bool {
        let l = self.degree;
        for i in 0..l {
            let mut row_seen = vec![false; l];
            let mut col_seen = vec![false; l];
            for j in 0..l {
                let rv = self.get(i, j);
                let cv = self.get(j, i);
                if rv >= l as u64 || cv >= l as u64 {
                    return false;
                }
                if row_seen[rv as usize] || col_seen[cv as usize] {
                    return false;
                }
                row_seen[rv as usize] = true;
                col_seen[cv as usize] = true;
            }
        }
        true
    }

    /// Checks orthogonality with another square of the same degree
    /// (Definition 2): every ordered symbol pair occurs in exactly one cell.
    pub fn is_orthogonal_to(&self, other: &LatinSquare) -> bool {
        if self.degree != other.degree {
            return false;
        }
        let l = self.degree;
        let mut seen = vec![false; l * l];
        for i in 0..l {
            for j in 0..l {
                let key = self.get(i, j) as usize * l + other.get(i, j) as usize;
                if seen[key] {
                    return false;
                }
                seen[key] = true;
            }
        }
        true
    }
}

impl fmt::Display for LatinSquare {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.degree {
            for j in 0..self.degree {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{}", self.get(i, j))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// A family of mutually orthogonal Latin squares (MOLS) of common degree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MolsFamily {
    degree: usize,
    squares: Vec<LatinSquare>,
}

impl MolsFamily {
    /// Constructs `count` MOLS of prime-power degree `l` via
    /// `L_α(i, j) = α·i + j` over `GF(l)` for `α = 1, …, count`
    /// (paper Section 4.1.1). At most `l − 1` such squares exist.
    ///
    /// # Errors
    ///
    /// * [`AssignmentError::DegreeNotPrimePower`] if no field of order `l`
    ///   exists;
    /// * [`AssignmentError::ReplicationOutOfRange`] if
    ///   `count` is 0 or exceeds `l − 1`.
    pub fn construct(l: u64, count: usize) -> Result<Self, AssignmentError> {
        let field = FiniteField::new(l).map_err(|_| AssignmentError::DegreeNotPrimePower(l))?;
        if count == 0 || count as u64 > l - 1 {
            return Err(AssignmentError::ReplicationOutOfRange {
                replication: count,
                min: 1,
                max: (l - 1) as usize,
            });
        }
        let squares = (1..=count as u64)
            .map(|alpha| LatinSquare::from_field(&field, alpha))
            .collect();
        Ok(MolsFamily {
            degree: l as usize,
            squares,
        })
    }

    /// Common degree of the family.
    #[inline]
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Number of squares in the family.
    #[inline]
    pub fn len(&self) -> usize {
        self.squares.len()
    }

    /// `true` if the family is empty (cannot occur via [`construct`]).
    ///
    /// [`construct`]: MolsFamily::construct
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.squares.is_empty()
    }

    /// The squares, in order `L_1, …, L_r`.
    #[inline]
    pub fn squares(&self) -> &[LatinSquare] {
        &self.squares
    }

    /// Verifies pairwise orthogonality of the whole family.
    pub fn is_mutually_orthogonal(&self) -> bool {
        for (i, a) in self.squares.iter().enumerate() {
            for b in &self.squares[i + 1..] {
                if !a.is_orthogonal_to(b) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper Table 1: the first MOLS of degree 5 is the cyclic square
    /// L1(i, j) = i + j (mod 5).
    #[test]
    fn table1_first_square() {
        let fam = MolsFamily::construct(5, 3).unwrap();
        let l1 = &fam.squares()[0];
        let expected = [
            [0, 1, 2, 3, 4],
            [1, 2, 3, 4, 0],
            [2, 3, 4, 0, 1],
            [3, 4, 0, 1, 2],
            [4, 0, 1, 2, 3],
        ];
        for (i, row) in expected.iter().enumerate() {
            for (j, &want) in row.iter().enumerate() {
                assert_eq!(l1.get(i, j), want);
            }
        }
    }

    /// Paper Table 1: L2(i, j) = 2i + j and L3(i, j) = 3i + j (mod 5).
    #[test]
    fn table1_second_and_third_squares() {
        let fam = MolsFamily::construct(5, 3).unwrap();
        let l2_expected = [
            [0, 1, 2, 3, 4],
            [2, 3, 4, 0, 1],
            [4, 0, 1, 2, 3],
            [1, 2, 3, 4, 0],
            [3, 4, 0, 1, 2],
        ];
        let l3_expected = [
            [0, 1, 2, 3, 4],
            [3, 4, 0, 1, 2],
            [1, 2, 3, 4, 0],
            [4, 0, 1, 2, 3],
            [2, 3, 4, 0, 1],
        ];
        for i in 0..5 {
            for j in 0..5 {
                assert_eq!(
                    fam.squares()[1].get(i, j),
                    l2_expected[i][j],
                    "L2 ({i},{j})"
                );
                assert_eq!(
                    fam.squares()[2].get(i, j),
                    l3_expected[i][j],
                    "L3 ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn constructed_squares_are_latin_and_orthogonal() {
        for l in [3u64, 4, 5, 7, 8, 9, 11] {
            let fam = MolsFamily::construct(l, (l - 1) as usize).unwrap();
            for sq in fam.squares() {
                assert!(sq.is_latin(), "degree {l}");
            }
            assert!(fam.is_mutually_orthogonal(), "degree {l}");
        }
    }

    #[test]
    fn invalid_parameters() {
        assert_eq!(
            MolsFamily::construct(6, 2).unwrap_err(),
            AssignmentError::DegreeNotPrimePower(6)
        );
        assert!(matches!(
            MolsFamily::construct(5, 5),
            Err(AssignmentError::ReplicationOutOfRange { .. })
        ));
        assert!(matches!(
            MolsFamily::construct(5, 0),
            Err(AssignmentError::ReplicationOutOfRange { .. })
        ));
    }

    #[test]
    fn from_cells_validation() {
        assert!(LatinSquare::from_cells(2, vec![0, 1, 1, 0]).is_some());
        // Repeated symbol in a row.
        assert!(LatinSquare::from_cells(2, vec![0, 0, 1, 1]).is_none());
        // Symbol out of range.
        assert!(LatinSquare::from_cells(2, vec![0, 2, 2, 0]).is_none());
        // Wrong length.
        assert!(LatinSquare::from_cells(2, vec![0, 1, 1]).is_none());
    }

    #[test]
    fn cells_with_symbol_matches_paper_example() {
        // Paper Example 1: the locations of symbol 0 in L1 are
        // (0,0), (1,4), (2,3), (3,2), (4,1).
        let fam = MolsFamily::construct(5, 3).unwrap();
        assert_eq!(
            fam.squares()[0].cells_with_symbol(0),
            vec![(0, 0), (1, 4), (2, 3), (3, 2), (4, 1)]
        );
    }

    #[test]
    fn non_orthogonal_detected() {
        let sq = MolsFamily::construct(5, 1).unwrap().squares()[0].clone();
        // A square is never orthogonal to itself (for degree > 1).
        assert!(!sq.is_orthogonal_to(&sq));
    }
}
