//! The common [`Assignment`] product type shared by all placement schemes.

use byz_graph::{BipartiteGraph, ExpansionBound, GraphError};
use std::fmt;

/// Which construction produced an assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// MOLS-based (paper Algorithm 2).
    Mols,
    /// Ramanujan bigraph, Case 1 (`m < s`).
    RamanujanCase1,
    /// Ramanujan bigraph, Case 2 (`m ≥ s`, `s | m`).
    RamanujanCase2,
    /// Fractional Repetition Code grouping (DRACO / DETOX).
    Frc,
    /// Uniform random replication.
    Random,
}

impl fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            SchemeKind::Mols => "MOLS",
            SchemeKind::RamanujanCase1 => "Ramanujan-1",
            SchemeKind::RamanujanCase2 => "Ramanujan-2",
            SchemeKind::Frc => "FRC",
            SchemeKind::Random => "Random",
        };
        f.write_str(name)
    }
}

/// Errors raised when a scheme's parameter constraints are violated.
#[derive(Debug, Clone, PartialEq)]
pub enum AssignmentError {
    /// MOLS needs a prime-power degree `l`.
    DegreeNotPrimePower(u64),
    /// MOLS supports at most `l − 1` mutually orthogonal squares, and the
    /// ByzShield analysis needs `2 < r < l` (Lemma 2); Ramanujan Case 1
    /// likewise needs `2 ≤ m < s`.
    ReplicationOutOfRange {
        replication: usize,
        min: usize,
        max: usize,
    },
    /// Majority voting needs an odd replication factor (paper Section 2).
    ReplicationNotOdd(usize),
    /// Ramanujan constructions need a prime `s`.
    SNotPrime(u64),
    /// Ramanujan Case 2 requires `s | m`.
    SDoesNotDivideM { s: u64, m: u64 },
    /// FRC requires the group size `r` to divide `K`.
    GroupSizeDoesNotDivide { workers: usize, replication: usize },
    /// Random assignment requires `K ≥ r` and `f·r` divisible by `K` for
    /// biregularity.
    InfeasibleRandom {
        workers: usize,
        files: usize,
        replication: usize,
    },
    /// An internal graph operation failed (should not happen for valid
    /// parameters).
    Graph(GraphError),
}

impl fmt::Display for AssignmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AssignmentError::DegreeNotPrimePower(l) => {
                write!(f, "MOLS degree {l} must be a prime power")
            }
            AssignmentError::ReplicationOutOfRange { replication, min, max } => {
                write!(f, "replication {replication} outside supported range [{min}, {max}]")
            }
            AssignmentError::ReplicationNotOdd(r) => {
                write!(f, "majority voting needs odd replication, got {r}")
            }
            AssignmentError::SNotPrime(s) => write!(f, "Ramanujan parameter s = {s} must be prime"),
            AssignmentError::SDoesNotDivideM { s, m } => {
                write!(f, "Ramanujan Case 2 requires s | m, got s = {s}, m = {m}")
            }
            AssignmentError::GroupSizeDoesNotDivide { workers, replication } => {
                write!(f, "FRC needs r | K, got K = {workers}, r = {replication}")
            }
            AssignmentError::InfeasibleRandom { workers, files, replication } => write!(
                f,
                "random biregular assignment infeasible for K = {workers}, f = {files}, r = {replication}"
            ),
            AssignmentError::Graph(e) => write!(f, "graph error: {e}"),
        }
    }
}

impl std::error::Error for AssignmentError {}

impl From<GraphError> for AssignmentError {
    fn from(e: GraphError) -> Self {
        AssignmentError::Graph(e)
    }
}

/// A concrete worker–file placement: the bipartite graph plus its system
/// parameters `(K, f, l, r)` and provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    kind: SchemeKind,
    graph: BipartiteGraph,
    load: usize,
    replication: usize,
}

impl Assignment {
    /// Wraps a graph whose biregular degrees match `(load, replication)`.
    ///
    /// # Panics
    ///
    /// Panics if the graph degrees disagree with the declared parameters;
    /// scheme constructors guarantee this internally.
    pub(crate) fn from_parts(
        kind: SchemeKind,
        graph: BipartiteGraph,
        load: usize,
        replication: usize,
    ) -> Self {
        debug_assert_eq!(graph.left_degree(), Some(load), "load mismatch");
        debug_assert_eq!(
            graph.right_degree(),
            Some(replication),
            "replication mismatch"
        );
        Assignment {
            kind,
            graph,
            load,
            replication,
        }
    }

    /// Which scheme produced this assignment.
    #[inline]
    pub fn kind(&self) -> SchemeKind {
        self.kind
    }

    /// The underlying worker–file bipartite graph.
    #[inline]
    pub fn graph(&self) -> &BipartiteGraph {
        &self.graph
    }

    /// Number of workers `K`.
    #[inline]
    pub fn num_workers(&self) -> usize {
        self.graph.num_workers()
    }

    /// Number of files `f`.
    #[inline]
    pub fn num_files(&self) -> usize {
        self.graph.num_files()
    }

    /// Computational load `l` (files per worker).
    #[inline]
    pub fn load(&self) -> usize {
        self.load
    }

    /// Replication factor `r` (copies per file).
    #[inline]
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// Majority threshold `r' = (r + 1) / 2`: a file is distorted only if
    /// at least `r'` of its copies are Byzantine (paper Section 2).
    #[inline]
    pub fn majority_threshold(&self) -> usize {
        self.replication.div_ceil(2)
    }

    /// Spectral expansion bound (β, γ) for `q` Byzantine workers.
    ///
    /// # Errors
    ///
    /// Propagates spectral-computation failures.
    pub fn expansion_bound(&self, q: usize) -> Result<ExpansionBound, GraphError> {
        self.graph.expansion_bound(q)
    }

    /// Convenience: second-largest eigenvalue `µ₁` of `A·Aᵀ`.
    pub fn second_eigenvalue(&self) -> Result<f64, GraphError> {
        self.graph.second_eigenvalue()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_kind_display() {
        assert_eq!(SchemeKind::Mols.to_string(), "MOLS");
        assert_eq!(SchemeKind::RamanujanCase2.to_string(), "Ramanujan-2");
        assert_eq!(SchemeKind::Frc.to_string(), "FRC");
    }

    #[test]
    fn majority_threshold() {
        let g = BipartiteGraph::from_edges(3, 1, &[(0, 0), (1, 0), (2, 0)]).unwrap();
        let a = Assignment::from_parts(SchemeKind::Frc, g, 1, 3);
        assert_eq!(a.majority_threshold(), 2);
    }
}
