//! Property-based tests over all assignment schemes.

use byz_assign::{FrcAssignment, MolsAssignment, RamanujanAssignment, RandomAssignment};
use byz_field::is_prime;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Valid (l, r) parameter pairs for the MOLS scheme: prime-power l,
/// odd 2 < r < l.
fn mols_params() -> impl Strategy<Value = (u64, usize)> {
    let valid: Vec<(u64, usize)> = [5u64, 7, 8, 9, 11, 13]
        .into_iter()
        .flat_map(|l| (3..l as usize).step_by(2).map(move |r| (l, r)))
        .collect();
    prop::sample::select(valid)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn mols_structure((l, r) in mols_params()) {
        let a = MolsAssignment::new(l, r).unwrap().build();
        let l = l as usize;
        prop_assert_eq!(a.num_workers(), r * l);
        prop_assert_eq!(a.num_files(), l * l);
        prop_assert_eq!(a.graph().left_degree(), Some(l));
        prop_assert_eq!(a.graph().right_degree(), Some(r));
        // Every file's replica set spans r distinct parallel classes.
        for file in 0..a.num_files() {
            let classes: std::collections::BTreeSet<usize> =
                a.graph().workers_of(file).iter().map(|w| w / l).collect();
            prop_assert_eq!(classes.len(), r);
        }
    }

    #[test]
    fn mols_second_eigenvalue_is_one_over_r((l, r) in mols_params()) {
        let a = MolsAssignment::new(l, r).unwrap().build();
        let mu1 = a.second_eigenvalue().unwrap();
        prop_assert!((mu1 - 1.0 / r as f64).abs() < 1e-8, "µ₁ = {}", mu1);
    }

    #[test]
    fn gamma_bound_dominates_volume_argument((l, r) in mols_params(), q_frac in 0.1f64..0.49) {
        // γ must always be a valid (possibly loose) upper bound; sanity:
        // it is nonnegative and at most q·l / r' (the trivial edge-count
        // bound divided by the distortion threshold is looser than γ only
        // sometimes, so just check nonnegativity and monotonicity in q).
        let a = MolsAssignment::new(l, r).unwrap().build();
        let k = a.num_workers();
        let q = ((k as f64 * q_frac) as usize).max(1);
        let b1 = a.expansion_bound(q).unwrap();
        let b2 = a.expansion_bound(q + 1).unwrap();
        prop_assert!(b1.gamma() >= 0.0);
        prop_assert!(b2.gamma() >= b1.gamma(), "γ not monotone in q");
        prop_assert!(b1.beta() <= (q * a.load()) as f64 + 1e-9, "β exceeds ql");
    }

    #[test]
    fn ramanujan_case1_matches_mols_spectrum(s in prop::sample::select(vec![5u64, 7, 11]),
                                             m in prop::sample::select(vec![3u64])) {
        prop_assume!(m < s && is_prime(s));
        let ram = RamanujanAssignment::new(m, s).unwrap().build();
        let mols = MolsAssignment::new(s, m as usize).unwrap().build();
        let sr = ram.graph().clustered_spectrum(1e-6).unwrap();
        let sm = mols.graph().clustered_spectrum(1e-6).unwrap();
        prop_assert_eq!(sr.len(), sm.len());
        for (a, b) in sr.iter().zip(sm.iter()) {
            prop_assert!((a.0 - b.0).abs() < 1e-7);
            prop_assert_eq!(a.1, b.1);
        }
    }

    #[test]
    fn frc_group_structure(groups in 2usize..8, r in prop::sample::select(vec![3usize, 5, 7])) {
        let k = groups * r;
        let a = FrcAssignment::new(k, r).unwrap().build();
        prop_assert_eq!(a.num_files(), groups);
        // All workers of a group hold exactly the group file.
        for w in 0..k {
            prop_assert_eq!(a.graph().files_of(w), &[w / r]);
        }
    }

    #[test]
    fn random_assignment_biregular(seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = RandomAssignment::new(15, 25, 3).unwrap().build(&mut rng);
        prop_assert_eq!(a.graph().left_degree(), Some(5));
        prop_assert_eq!(a.graph().right_degree(), Some(3));
        // Each file's replicas are distinct workers.
        for fidx in 0..25 {
            let ws = a.graph().workers_of(fidx);
            let set: std::collections::BTreeSet<_> = ws.iter().collect();
            prop_assert_eq!(set.len(), ws.len());
        }
    }
}
