//! Property-based tests over the churn-driven dynamic assignment.
//!
//! These pin the invariants the elastic-membership layer is built on:
//! every file keeps its replicas as long as members survive, the greedy
//! repair/rebalance keeps load skew bounded, the realization is a pure
//! function of the membership *sets* (event order and batching are
//! irrelevant), and a pure departure set lands on exactly the placement
//! `reassign_quarantined` produces.

use byz_assign::{reassign_quarantined, Assignment, DynamicAssignment, MolsAssignment};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// The paper's flagship instance: K = 15 workers, f = 25 files, l = 5,
/// r = 3.
fn mols() -> Assignment {
    MolsAssignment::new(5, 3).unwrap().build()
}

/// A churn scenario: a set of founding workers that leave and a set of
/// fresh ids (≥ K) that join. Leaves are capped so at least one founder
/// survives even when no one joins.
fn churn() -> impl Strategy<Value = (Vec<usize>, Vec<usize>)> {
    (
        prop::collection::btree_set(0usize..15, 0..=10),
        prop::collection::btree_set(15usize..21, 0..=4),
    )
        .prop_map(|(leaves, joins)| {
            (
                leaves.into_iter().collect::<Vec<_>>(),
                joins.into_iter().collect::<Vec<_>>(),
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Replica survival: every file holds `min(r, |members|)` *distinct*
    /// member replicas, and `under_replicated()` is exactly the set of
    /// files below `r`.
    #[test]
    fn every_file_keeps_its_replicas((leaves, joins) in churn()) {
        let mut dynamic = DynamicAssignment::new(mols());
        dynamic.apply(&joins, &leaves);
        let members: BTreeSet<usize> = dynamic.members().into_iter().collect();
        let r = dynamic.replication();
        let expected = r.min(members.len());
        for file in 0..dynamic.num_files() {
            let holders = dynamic.graph().workers_of(file);
            let distinct: BTreeSet<usize> = holders.iter().copied().collect();
            prop_assert_eq!(distinct.len(), holders.len(), "file {} has duplicate holders", file);
            prop_assert!(
                distinct.iter().all(|w| members.contains(w)),
                "file {} held by a non-member", file
            );
            prop_assert_eq!(holders.len(), expected, "file {} replica count", file);
            prop_assert_eq!(
                dynamic.under_replicated().contains(&file),
                holders.len() < r,
                "under_replicated mismatch for file {}", file
            );
        }
    }

    /// The greedy repair (least-loaded member first) and joiner
    /// rebalance (donate from the heaviest) keep the realized placement
    /// within `r` files of even.
    #[test]
    fn load_skew_stays_bounded((leaves, joins) in churn()) {
        let mut dynamic = DynamicAssignment::new(mols());
        dynamic.apply(&joins, &leaves);
        prop_assert!(
            dynamic.load_skew() <= dynamic.replication(),
            "skew {} exceeds r = {} (members {:?})",
            dynamic.load_skew(),
            dynamic.replication(),
            dynamic.members()
        );
        // Non-members never carry load.
        for w in 0..dynamic.universe() {
            if !dynamic.is_member(w) {
                prop_assert_eq!(dynamic.load_of(w), 0, "non-member {} holds files", w);
            }
        }
    }

    /// The realization depends only on the final membership sets: any
    /// interleaving of the same join/leave events — one at a time in
    /// shuffled order, or one batch — lands on the identical graph.
    #[test]
    fn realization_is_permutation_invariant(
        (leaves, joins) in churn(),
        order_seed in 0u64..1024,
    ) {
        let mut events: Vec<(bool, usize)> = leaves
            .iter().map(|&w| (false, w))
            .chain(joins.iter().map(|&w| (true, w)))
            .collect();

        let mut batched = DynamicAssignment::new(mols());
        batched.apply(&joins, &leaves);

        let mut sequential = DynamicAssignment::new(mols());
        // A cheap deterministic shuffle (Fisher–Yates on a splitmix-ish
        // stream) — proptest's shuffle strategy would hide the seed from
        // the failure report.
        let mut state = order_seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        for i in (1..events.len()).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            events.swap(i, (state as usize) % (i + 1));
        }
        for (is_join, w) in events {
            if is_join {
                sequential.join(w);
            } else {
                sequential.depart(w);
            }
        }
        prop_assert_eq!(sequential.graph(), batched.graph());
        prop_assert_eq!(sequential.under_replicated(), batched.under_replicated());
    }

    /// A pure departure set realizes exactly the placement the one-shot
    /// quarantine repair produces — quarantine and graceful leave are
    /// the same placement event.
    #[test]
    fn depart_set_matches_reassign_quarantined(
        leaves in prop::collection::btree_set(0usize..15, 0..=12),
    ) {
        let base = mols();
        let leaves: Vec<usize> = leaves.into_iter().collect();
        let mut dynamic = DynamicAssignment::new(base.clone());
        dynamic.apply(&[], &leaves);
        let repaired = reassign_quarantined(&base, &leaves);
        prop_assert_eq!(dynamic.graph(), repaired.graph());
        prop_assert_eq!(dynamic.under_replicated(), repaired.under_replicated());
    }

    /// Canonical realization means churn leaves no scars: rejoining
    /// every departed founder (and dropping every joiner) restores the
    /// base placement bit-for-bit.
    #[test]
    fn full_rejoin_restores_base((leaves, joins) in churn()) {
        let base = mols();
        let mut dynamic = DynamicAssignment::new(base.clone());
        dynamic.apply(&joins, &leaves);
        dynamic.apply(&leaves, &joins);
        for w in 0..base.num_workers() {
            prop_assert_eq!(
                dynamic.graph().files_of(w),
                base.graph().files_of(w),
                "worker {} placement not restored", w
            );
        }
        for j in joins {
            prop_assert!(dynamic.graph().files_of(j).is_empty());
        }
        prop_assert!(dynamic.is_fully_replicated());
    }
}
