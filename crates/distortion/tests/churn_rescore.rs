//! Property-based tests for the post-churn ε̂ re-scoring: the repaired
//! placement, re-scored exhaustively against its *actual* holder sets,
//! never exceeds the pre-repair bound in the honest-majority regime.
//!
//! The spectral ε̂ bound of the base biregular scheme does not survive
//! repair (the realized graph is generally not biregular), which is why
//! the elastic layer re-scores with `cmax_graph_exhaustive` /
//! `count_distorted_graph` instead. These properties pin the contract
//! that re-scoring relies on.

use byz_assign::{Assignment, DynamicAssignment, MolsAssignment};
use byz_distortion::{cmax_exhaustive, cmax_graph_exhaustive, count_distorted_graph};
use proptest::prelude::*;

/// K = 15 workers, f = 25 files, l = 5, r = 3.
fn mols() -> Assignment {
    MolsAssignment::new(5, 3).unwrap().build()
}

/// Churn that always leaves a full replication pool: at most `K − r`
/// founders leave, up to 4 fresh ids join.
fn churn() -> impl Strategy<Value = (Vec<usize>, Vec<usize>)> {
    (
        prop::collection::btree_set(0usize..15, 0..=12),
        prop::collection::btree_set(15usize..21, 0..=4),
    )
        .prop_map(|(leaves, joins)| {
            (
                leaves.into_iter().collect::<Vec<_>>(),
                joins.into_iter().collect::<Vec<_>>(),
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Honest majorities survive repair: with `q ≤ ⌊(r−1)/2⌋` Byzantine
    /// members, no file of a fully-replicated repaired placement can be
    /// distorted — the realized ε̂ is 0, never above the pre-repair
    /// bound at the same `q`. (Repair guarantees every file `r`
    /// *distinct* member holders; a sub-majority holder set can neither
    /// outvote nor tie the honest replicas.)
    #[test]
    fn honest_majority_epsilon_never_exceeds_pre_repair((leaves, joins) in churn()) {
        let base = mols();
        let q = (base.replication() - 1) / 2;
        let pre_repair = cmax_exhaustive(&base, q);
        let mut dynamic = DynamicAssignment::new(base.clone());
        dynamic.apply(&joins, &leaves);
        prop_assume!(dynamic.is_fully_replicated());
        let members = dynamic.members();
        let realized = cmax_graph_exhaustive(dynamic.graph(), &members, q);
        prop_assert!(realized.exact);
        prop_assert!(
            realized.epsilon_hat(dynamic.num_files())
                <= pre_repair.epsilon_hat(base.num_files()),
            "realized ε̂ {} exceeds pre-repair {} for q = {q}",
            realized.epsilon_hat(dynamic.num_files()),
            pre_repair.epsilon_hat(base.num_files()),
        );
        prop_assert_eq!(realized.value, 0);
    }

    /// The graph-level distortion counter accounts for every file
    /// exactly once: surviving + lost = f, distorted ⊆ surviving, and
    /// ε̂ is a fraction.
    #[test]
    fn distortion_accounting_is_total(
        (leaves, joins) in churn(),
        byz_picks in prop::collection::btree_set(0usize..21, 0..=5),
    ) {
        let mut dynamic = DynamicAssignment::new(mols());
        dynamic.apply(&joins, &leaves);
        let byzantine: Vec<usize> = byz_picks
            .into_iter()
            .filter(|&w| dynamic.is_member(w))
            .collect();
        let out = count_distorted_graph(dynamic.graph(), &byzantine);
        prop_assert_eq!(out.surviving_files + out.lost_files, dynamic.num_files());
        prop_assert!(out.distorted <= out.surviving_files);
        prop_assert!((0.0..=1.0).contains(&out.epsilon_hat()));
    }

    /// A larger adversary never distorts less: the realized worst case
    /// is monotone in `q` over the repaired graph.
    #[test]
    fn realized_cmax_is_monotone_in_q((leaves, joins) in churn()) {
        let mut dynamic = DynamicAssignment::new(mols());
        dynamic.apply(&joins, &leaves);
        let members = dynamic.members();
        let q_top = 3.min(members.len());
        let mut prev = 0usize;
        for q in 0..=q_top {
            let result = cmax_graph_exhaustive(dynamic.graph(), &members, q);
            prop_assert!(result.value >= prev, "c_max({q}) dropped below c_max({})", q as i64 - 1);
            prev = result.value;
        }
    }
}
