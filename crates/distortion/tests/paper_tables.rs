//! Regression tests: simulated c_max(q) must equal the values published in
//! the paper's Tables 3, 4 and 6 (Table 5's largest instances are covered
//! by the bench harness where a longer budget is acceptable).

use byz_assign::{MolsAssignment, RamanujanAssignment};
use byz_distortion::{cmax_auto, cmax_branch_and_bound, cmax_exhaustive, count_distorted};

/// Paper Table 3: MOLS (K, f, l, r) = (15, 25, 5, 3).
#[test]
fn table3_mols_15_25_5_3() {
    let a = MolsAssignment::new(5, 3).unwrap().build();
    let expected = [(2, 1), (3, 3), (4, 5), (5, 8), (6, 12), (7, 14)];
    for (q, c) in expected {
        let res = cmax_auto(&a, q);
        assert!(res.exact);
        assert_eq!(res.value, c, "Table 3, q = {q}");
    }
}

/// Table 3 footnote: the Ramanujan Case 1 scheme with identical parameters
/// has identical simulated c_max values.
#[test]
fn table3_ramanujan_case1_matches() {
    let a = RamanujanAssignment::new(3, 5).unwrap().build();
    let expected = [(2, 1), (3, 3), (4, 5), (5, 8), (6, 12), (7, 14)];
    for (q, c) in expected {
        let res = cmax_auto(&a, q);
        assert!(res.exact);
        assert_eq!(res.value, c, "Ramanujan Case 1, q = {q}");
    }
}

/// Paper Table 4: Ramanujan Case 2 (m, s) = (5, 5), (K, f, l, r) = (25, 25, 5, 5).
#[test]
fn table4_ramanujan_case2_25_25_5_5() {
    let a = RamanujanAssignment::new(5, 5).unwrap().build();
    let expected = [
        (3, 1),
        (4, 1),
        (5, 2),
        (6, 4),
        (7, 5),
        (8, 7),
        (9, 9),
        (10, 12),
        (11, 14),
        (12, 17),
    ];
    for (q, c) in expected {
        let res = cmax_branch_and_bound(&a, q, u64::MAX);
        assert!(res.exact, "q = {q} should complete exactly");
        assert_eq!(res.value, c, "Table 4, q = {q}");
        assert_eq!(count_distorted(&a, &res.witness), c);
    }
}

/// Paper Table 6: MOLS (K, f, l, r) = (21, 49, 7, 3).
#[test]
fn table6_mols_21_49_7_3() {
    let a = MolsAssignment::new(7, 3).unwrap().build();
    let expected = [
        (2, 1),
        (3, 3),
        (4, 5),
        (5, 8),
        (6, 12),
        (7, 16),
        (8, 21),
        (9, 25),
        (10, 29),
    ];
    for (q, c) in expected {
        let res = cmax_branch_and_bound(&a, q, u64::MAX);
        assert!(res.exact, "q = {q} should complete exactly");
        assert_eq!(res.value, c, "Table 6, q = {q}");
    }
}

/// Paper Table 5 (small-q prefix): MOLS (K, f, l, r) = (35, 49, 7, 5).
/// The full sweep to q = 13 runs in the bench harness; here we verify the
/// head of the table stays exact and correct.
#[test]
fn table5_mols_35_49_7_5_prefix() {
    let a = MolsAssignment::new(7, 5).unwrap().build();
    let expected = [(3, 1), (4, 1), (5, 2), (6, 4), (7, 5)];
    for (q, c) in expected {
        let res = cmax_branch_and_bound(&a, q, u64::MAX);
        assert!(res.exact, "q = {q} should complete exactly");
        assert_eq!(res.value, c, "Table 5, q = {q}");
    }
}

/// The γ bound of Claim 1 dominates every simulated c_max (Section 5.3.2's
/// observation that γ is a tight upper bound).
#[test]
fn gamma_dominates_simulated_cmax() {
    let a = MolsAssignment::new(5, 3).unwrap().build();
    for q in 2..=7 {
        let res = cmax_exhaustive(&a, q);
        let gamma = a.expansion_bound(q).unwrap().gamma();
        assert!(
            (res.value as f64) <= gamma + 1e-9,
            "q = {q}: c_max = {} > γ = {gamma}",
            res.value
        );
    }
}
