//! Monte-Carlo estimation of the distortion fraction under a RANDOM
//! Byzantine set — the weaker adversary model whose average-case
//! guarantees DETOX/DRACO rely on (paper Section 1.2: their results
//! "depend heavily on a random assignment of tasks … and random choice of
//! the adversarial workers").

use crate::count_distorted;
use byz_assign::Assignment;
use rand::rngs::StdRng;
use rand::seq::index::sample;
use rand::SeedableRng;

/// Result of a Monte-Carlo sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct MonteCarloEpsilon {
    /// Mean distorted fraction over the trials.
    pub mean: f64,
    /// Sample standard deviation of the distorted fraction.
    pub std: f64,
    /// The largest fraction observed in any trial (a lower bound on the
    /// worst case).
    pub max: f64,
    /// Number of trials.
    pub trials: usize,
}

/// Estimates `E[ε̂]` over uniformly random Byzantine sets of size `q`.
///
/// # Panics
///
/// Panics when `q` exceeds the worker count or `trials == 0`.
pub fn monte_carlo_epsilon(
    assignment: &Assignment,
    q: usize,
    trials: usize,
    seed: u64,
) -> MonteCarloEpsilon {
    let k = assignment.num_workers();
    assert!(q <= k, "q = {q} exceeds K = {k}");
    assert!(trials > 0, "need at least one trial");
    let f = assignment.num_files() as f64;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut values = Vec::with_capacity(trials);
    for _ in 0..trials {
        let byz: Vec<usize> = sample(&mut rng, k, q).into_iter().collect();
        values.push(count_distorted(assignment, &byz) as f64 / f);
    }
    let mean = values.iter().sum::<f64>() / trials as f64;
    let var =
        values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (trials as f64 - 1.0).max(1.0);
    let max = values.iter().cloned().fold(0.0f64, f64::max);
    MonteCarloEpsilon {
        mean,
        std: var.sqrt(),
        max,
        trials,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cmax_exhaustive;
    use byz_assign::{FrcAssignment, MolsAssignment};

    #[test]
    fn random_average_is_below_worst_case() {
        let a = MolsAssignment::new(5, 3).unwrap().build();
        for q in [3usize, 5] {
            let mc = monte_carlo_epsilon(&a, q, 500, 7);
            let worst = cmax_exhaustive(&a, q).epsilon_hat(25);
            assert!(mc.mean <= worst + 1e-12, "q = {q}");
            assert!(mc.max <= worst + 1e-12, "q = {q}");
            assert!(mc.std >= 0.0);
            assert_eq!(mc.trials, 500);
        }
    }

    #[test]
    fn frc_random_vs_worst_gap_is_large() {
        // The paper's Section 5.3.1 point in numbers: the same FRC
        // placement looks safe on average but is catastrophic worst-case.
        let a = FrcAssignment::new(15, 3).unwrap().build();
        let q = 4;
        let mc = monte_carlo_epsilon(&a, q, 1_000, 3);
        let worst = cmax_exhaustive(&a, q).epsilon_hat(a.num_files());
        assert!(worst >= 0.4 - 1e-12, "⌊4/2⌋ of 5 groups = 0.4");
        assert!(
            mc.mean < worst / 2.0,
            "random average {:.3} should be far below worst case {worst}",
            mc.mean
        );
    }

    #[test]
    fn zero_byzantines_distort_nothing() {
        let a = MolsAssignment::new(5, 3).unwrap().build();
        let mc = monte_carlo_epsilon(&a, 0, 10, 1);
        assert_eq!(mc.mean, 0.0);
        assert_eq!(mc.max, 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = MolsAssignment::new(5, 3).unwrap().build();
        let x = monte_carlo_epsilon(&a, 4, 100, 11);
        let y = monte_carlo_epsilon(&a, 4, 100, 11);
        assert_eq!(x, y);
    }
}
