//! Closed-form distortion fractions (paper Sections 5.2 and 5.3.1).

/// Baseline (no redundancy) distortion fraction: every Byzantine worker
/// corrupts exactly its own gradient, so `ε̂ = q/K`.
pub fn baseline_epsilon(q: usize, num_workers: usize) -> f64 {
    q as f64 / num_workers as f64
}

/// Worst-case distortion fraction for the FRC grouping of DRACO/DETOX
/// under an omniscient adversary (Section 5.3.1):
///
/// ```text
/// ε̂_FRC = ⌊q / r′⌋ · r / K
/// ```
///
/// The attacker plants `r′ = (r+1)/2` Byzantines in each of `⌊q/r′⌋`
/// vote groups, corrupting those groups' entire sample share.
pub fn frc_epsilon(q: usize, replication: usize, num_workers: usize) -> f64 {
    let r_prime = replication.div_ceil(2);
    (q / r_prime) as f64 * replication as f64 / num_workers as f64
}

/// Exact `c_max(q)` for ByzShield's constructions in the small-`q` regime
/// `q ≤ r` (paper Claim 2). Returns `None` outside that regime.
pub fn claim2_exact_cmax(q: usize, replication: usize) -> Option<usize> {
    if q > replication {
        return None;
    }
    let r = replication;
    let r_prime = r.div_ceil(2);
    let value = if r == 3 {
        match q {
            0 | 1 => 0,
            2 => 1,
            _ => 3, // q == 3
        }
    } else {
        // r > 3 (odd).
        if q < r_prime {
            0
        } else if q < r {
            1
        } else {
            2 // q == r
        }
    };
    Some(value)
}

/// Exact distortion fraction `ε̂ = c_max(q)/f` in the regime `q ≤ r`
/// (Claim 2). Returns `None` outside that regime.
pub fn claim2_exact_epsilon(q: usize, replication: usize, num_files: usize) -> Option<f64> {
    claim2_exact_cmax(q, replication).map(|c| c as f64 / num_files as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_paper_table3() {
        // Table 3 column ε̂-Baseline for K = 15: q=2 → 0.13, q=3 → 0.2, …
        assert!((baseline_epsilon(2, 15) - 0.1333).abs() < 1e-3);
        assert!((baseline_epsilon(3, 15) - 0.2).abs() < 1e-12);
        assert!((baseline_epsilon(7, 15) - 0.4667).abs() < 1e-3);
    }

    #[test]
    fn frc_matches_paper_table3() {
        // Table 3 column ε̂-FRC for (K, r) = (15, 3), r′ = 2:
        // q=2 → 0.2, q=3 → 0.2, q=4 → 0.4, q=5 → 0.4, q=6 → 0.6, q=7 → 0.6.
        let expect = [(2, 0.2), (3, 0.2), (4, 0.4), (5, 0.4), (6, 0.6), (7, 0.6)];
        for (q, e) in expect {
            assert!((frc_epsilon(q, 3, 15) - e).abs() < 1e-12, "q = {q}");
        }
    }

    #[test]
    fn frc_matches_paper_table4() {
        // Table 4: (K, r) = (25, 5), r′ = 3.
        let expect = [
            (3, 0.2),
            (5, 0.2),
            (6, 0.4),
            (8, 0.4),
            (9, 0.6),
            (11, 0.6),
            (12, 0.8),
        ];
        for (q, e) in expect {
            assert!((frc_epsilon(q, 5, 25) - e).abs() < 1e-12, "q = {q}");
        }
    }

    #[test]
    fn claim2_r3() {
        assert_eq!(claim2_exact_cmax(0, 3), Some(0));
        assert_eq!(claim2_exact_cmax(1, 3), Some(0));
        assert_eq!(claim2_exact_cmax(2, 3), Some(1));
        assert_eq!(claim2_exact_cmax(3, 3), Some(3));
        assert_eq!(claim2_exact_cmax(4, 3), None);
    }

    #[test]
    fn claim2_r5() {
        // r = 5, r′ = 3: q < 3 → 0; 3 ≤ q < 5 → 1; q = 5 → 2.
        assert_eq!(claim2_exact_cmax(2, 5), Some(0));
        assert_eq!(claim2_exact_cmax(3, 5), Some(1));
        assert_eq!(claim2_exact_cmax(4, 5), Some(1));
        assert_eq!(claim2_exact_cmax(5, 5), Some(2));
        assert_eq!(claim2_exact_cmax(6, 5), None);
    }

    #[test]
    fn claim2_epsilon_matches_table4_small_q() {
        // Table 4, (f, r) = (25, 5): q=3 → 0.04, q=4 → 0.04, q=5 → 0.08.
        assert!((claim2_exact_epsilon(3, 5, 25).unwrap() - 0.04).abs() < 1e-12);
        assert!((claim2_exact_epsilon(4, 5, 25).unwrap() - 0.04).abs() < 1e-12);
        assert!((claim2_exact_epsilon(5, 5, 25).unwrap() - 0.08).abs() < 1e-12);
    }
}
