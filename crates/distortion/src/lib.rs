//! Worst-case distortion-fraction analysis (paper Section 5).
//!
//! Against an *omniscient* adversary the relevant robustness metric is
//!
//! ```text
//! ε̂ = c_max(q) / f
//! ```
//!
//! where `c_max(q)` is the maximum number of files whose majority vote can
//! be corrupted by the best choice of `q` Byzantine workers. This crate
//! computes `c_max(q)`:
//!
//! * [`cmax_exhaustive`] — enumerates all `C(K, q)` Byzantine sets (the
//!   paper's "exhaustive simulations", Section 5.3.2);
//! * [`cmax_branch_and_bound`] — exact like the exhaustive solver but with
//!   an optimistic edge-budget bound that prunes most of the tree, making
//!   instances like the paper's `(K, f) = (35, 49)` Table 5 tractable;
//! * [`cmax_greedy`] — a fast greedy + swap local-search attacker whose
//!   value is a lower bound (and empirically matches the optimum on every
//!   paper instance).
//!
//! and the closed-form comparisons of Section 5.3:
//!
//! * [`baseline_epsilon`] — no redundancy: `ε̂ = q/K`;
//! * [`frc_epsilon`] — worst-case attack on DRACO/DETOX's FRC grouping:
//!   `ε̂ = ⌊q/r′⌋·r/K`;
//! * [`claim2_exact_epsilon`] — exact ByzShield values in the regime
//!   `q ≤ r` (Claim 2);
//! * the spectral upper bound γ via `Assignment::expansion_bound`.

mod formulas;
mod montecarlo;
mod solver;

pub use formulas::{baseline_epsilon, claim2_exact_cmax, claim2_exact_epsilon, frc_epsilon};
pub use montecarlo::{monte_carlo_epsilon, MonteCarloEpsilon};
pub use solver::{
    cmax_branch_and_bound, cmax_exhaustive, cmax_graph_exhaustive, cmax_greedy, count_distorted,
    count_distorted_graph, count_distorted_post_quarantine, count_distorted_surviving, CmaxResult,
    SurvivingDistortion,
};

use byz_assign::Assignment;

/// Default node budget for [`cmax_branch_and_bound`] used by [`cmax_auto`].
pub const DEFAULT_NODE_LIMIT: u64 = 1_000_000_000;

/// Computes `c_max(q)` with the cheapest solver that can certify exactness
/// for the instance size, falling back to branch-and-bound with the default
/// node budget (and finally to the greedy lower bound if even that is
/// exhausted).
pub fn cmax_auto(assignment: &Assignment, q: usize) -> CmaxResult {
    let k = assignment.num_workers();
    // Rough cost of plain enumeration; under ~2M subsets it is instant.
    let combos = binomial_saturating(k as u64, q as u64);
    if combos <= 2_000_000 {
        cmax_exhaustive(assignment, q)
    } else {
        cmax_branch_and_bound(assignment, q, DEFAULT_NODE_LIMIT)
    }
}

/// `C(n, k)` with saturation on overflow.
pub fn binomial_saturating(n: u64, k: u64) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc * (n - i) as u128 / (i + 1) as u128;
        if acc > u64::MAX as u128 {
            return u64::MAX;
        }
    }
    acc as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_values() {
        assert_eq!(binomial_saturating(5, 2), 10);
        assert_eq!(binomial_saturating(15, 7), 6435);
        assert_eq!(binomial_saturating(35, 13), 1_476_337_800);
        assert_eq!(binomial_saturating(3, 5), 0);
        assert_eq!(binomial_saturating(200, 100), u64::MAX);
    }
}
