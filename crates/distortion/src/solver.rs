//! Exact and heuristic solvers for the omniscient attacker's problem:
//! choose `q` of `K` workers maximizing the number of majority-distorted
//! files.

use byz_assign::Assignment;
use byz_graph::BipartiteGraph;
use rand::seq::SliceRandom;
use rand::Rng;

/// Result of a `c_max(q)` computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CmaxResult {
    /// The (best-found) number of distortable files.
    pub value: usize,
    /// A Byzantine worker set achieving `value`.
    pub witness: Vec<usize>,
    /// `true` when `value` is provably optimal.
    pub exact: bool,
    /// Search nodes explored (diagnostic).
    pub nodes_explored: u64,
}

impl CmaxResult {
    /// The distortion fraction `ε̂ = value / f` for the given file count.
    pub fn epsilon_hat(&self, num_files: usize) -> f64 {
        self.value as f64 / num_files as f64
    }
}

/// Counts the files whose majority is corrupted by the given Byzantine
/// worker set: file `i` is distorted iff at least `r′ = (r+1)/2` of its
/// `r` replicas are Byzantine (paper Section 2, Eq. 3).
pub fn count_distorted(assignment: &Assignment, byzantine: &[usize]) -> usize {
    let mut is_byz = vec![false; assignment.num_workers()];
    for &w in byzantine {
        is_byz[w] = true;
    }
    let threshold = assignment.majority_threshold();
    (0..assignment.num_files())
        .filter(|&fidx| {
            assignment
                .graph()
                .workers_of(fidx)
                .iter()
                .filter(|&&w| is_byz[w])
                .count()
                >= threshold
        })
        .count()
}

/// Distortion accounting over *partial* replica sets: what a degraded
/// round (crashes, drops) actually exposes to the colluding adversary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SurvivingDistortion {
    /// Files whose surviving-replica vote elects the Byzantine payload.
    pub distorted: usize,
    /// Files with at least one surviving replica (the denominator of the
    /// degraded `ε̂`).
    pub surviving_files: usize,
    /// Files every replica of which was lost — no vote at all.
    pub lost_files: usize,
}

impl SurvivingDistortion {
    /// The degraded distortion fraction `ε̂`, computed over surviving
    /// files only (0 when nothing survived).
    pub fn epsilon_hat(&self) -> f64 {
        if self.surviving_files == 0 {
            0.0
        } else {
            self.distorted as f64 / self.surviving_files as f64
        }
    }
}

/// Counts distorted file majorities when only a subset of each file's
/// replicas survives — the degraded-quorum generalization of
/// [`count_distorted`].
///
/// `survives(file, worker)` says whether that worker's replica of that
/// file reached the parameter server. The vote over the survivors is the
/// deterministic degraded vote (`byz_aggregate::quorum_vote`): colluding
/// Byzantine replicas are bit-identical forgeries and honest replicas are
/// bit-identical truths, so the winner is the Byzantine payload iff the
/// Byzantine survivors are a strict majority, or exactly half and the
/// smallest surviving worker id is Byzantine (the tie-break).
pub fn count_distorted_surviving(
    assignment: &Assignment,
    byzantine: &[usize],
    survives: &dyn Fn(usize, usize) -> bool,
) -> SurvivingDistortion {
    let mut is_byz = vec![false; assignment.num_workers()];
    for &w in byzantine {
        is_byz[w] = true;
    }
    let mut out = SurvivingDistortion {
        distorted: 0,
        surviving_files: 0,
        lost_files: 0,
    };
    for fidx in 0..assignment.num_files() {
        let survivors: Vec<usize> = assignment
            .graph()
            .workers_of(fidx)
            .iter()
            .copied()
            .filter(|&w| survives(fidx, w))
            .collect();
        if survivors.is_empty() {
            out.lost_files += 1;
            continue;
        }
        out.surviving_files += 1;
        let byz = survivors.iter().filter(|&&w| is_byz[w]).count();
        let honest = survivors.len() - byz;
        // survivors is ascending, so survivors[0] is the tie-break holder.
        let distorted = byz > honest || (byz == honest && byz > 0 && is_byz[survivors[0]]);
        if distorted {
            out.distorted += 1;
        }
    }
    out
}

/// Distortion remaining after the reputation layer quarantines a worker
/// set: a quarantined worker's replicas are dropped on arrival (or never
/// computed), so each file is voted over its non-quarantined holders
/// only.
///
/// Quarantining exactly the Byzantine set drives `ε̂` to zero while every
/// file keeps its honest replicas; quarantining *more* than a file's
/// honest holders loses the file instead (it shows up in
/// [`SurvivingDistortion::lost_files`]). Honest false positives are
/// therefore visible in the same accounting as missed detections.
pub fn count_distorted_post_quarantine(
    assignment: &Assignment,
    byzantine: &[usize],
    quarantined: &[usize],
) -> SurvivingDistortion {
    let mut gone = vec![false; assignment.num_workers()];
    for &w in quarantined {
        if let Some(slot) = gone.get_mut(w) {
            *slot = true;
        }
    }
    count_distorted_surviving(assignment, byzantine, &|_, w| !gone[w])
}

/// Distortion accounting over a *raw* worker–file graph — the entry
/// point for repaired/elastic placements, which are generally not
/// biregular and so are not [`Assignment`]s.
///
/// Unlike [`count_distorted`], the majority is taken over each file's
/// *actual* holder set (replica counts vary after churn repair): a file
/// is distorted iff its Byzantine holders outnumber the honest ones, or
/// tie with the smallest holder id Byzantine (the degraded-vote
/// tie-break). Files with no holders at all are `lost_files`.
pub fn count_distorted_graph(graph: &BipartiteGraph, byzantine: &[usize]) -> SurvivingDistortion {
    let mut is_byz = vec![false; graph.num_workers()];
    for &w in byzantine {
        if let Some(slot) = is_byz.get_mut(w) {
            *slot = true;
        }
    }
    let mut out = SurvivingDistortion {
        distorted: 0,
        surviving_files: 0,
        lost_files: 0,
    };
    for fidx in 0..graph.num_files() {
        let holders = graph.workers_of(fidx);
        if holders.is_empty() {
            out.lost_files += 1;
            continue;
        }
        out.surviving_files += 1;
        let byz = holders.iter().filter(|&&w| is_byz[w]).count();
        let honest = holders.len() - byz;
        // holders is ascending, so holders[0] is the tie-break holder.
        let distorted = byz > honest || (byz == honest && byz > 0 && is_byz[holders[0]]);
        if distorted {
            out.distorted += 1;
        }
    }
    out
}

/// Exact worst-case `c_max(q)` over a raw graph: enumerates every
/// `q`-subset of `candidates` (normally the current member set) and
/// returns the most distorting one. Plain enumeration — meant for the
/// post-churn re-scoring of repaired placements, where the member count
/// is a cluster size, not a search-space size.
pub fn cmax_graph_exhaustive(graph: &BipartiteGraph, candidates: &[usize], q: usize) -> CmaxResult {
    assert!(
        q <= candidates.len(),
        "cannot corrupt more workers than there are candidates"
    );
    let mut best = CmaxResult {
        value: 0,
        witness: Vec::new(),
        exact: true,
        nodes_explored: 0,
    };
    let mut subset: Vec<usize> = Vec::with_capacity(q);
    enumerate_subsets(graph, candidates, q, 0, &mut subset, &mut best);
    best
}

fn enumerate_subsets(
    graph: &BipartiteGraph,
    candidates: &[usize],
    q: usize,
    start: usize,
    subset: &mut Vec<usize>,
    best: &mut CmaxResult,
) {
    if subset.len() == q {
        best.nodes_explored += 1;
        let value = count_distorted_graph(graph, subset).distorted;
        if value > best.value || best.witness.is_empty() {
            best.value = value;
            best.witness = subset.clone();
        }
        return;
    }
    let needed = q - subset.len();
    for i in start..=candidates.len().saturating_sub(needed) {
        subset.push(candidates[i]);
        enumerate_subsets(graph, candidates, q, i + 1, subset, best);
        subset.pop();
    }
}

/// Exhaustive `c_max(q)`: checks every `C(K, q)` Byzantine set.
/// Exact but only viable for small instances.
pub fn cmax_exhaustive(assignment: &Assignment, q: usize) -> CmaxResult {
    let k = assignment.num_workers();
    assert!(q <= k, "cannot corrupt more workers than exist");
    let mut state = SearchState::new(assignment);
    let mut best = CmaxResult {
        value: 0,
        witness: Vec::new(),
        exact: true,
        nodes_explored: 0,
    };
    let mut chosen = Vec::with_capacity(q);
    exhaustive_rec(&mut state, q, 0, &mut chosen, &mut best);
    best
}

fn exhaustive_rec(
    state: &mut SearchState<'_>,
    q: usize,
    start: usize,
    chosen: &mut Vec<usize>,
    best: &mut CmaxResult,
) {
    best.nodes_explored += 1;
    if chosen.len() == q {
        if state.distorted > best.value {
            best.value = state.distorted;
            best.witness = chosen.clone();
        }
        return;
    }
    let remaining_needed = q - chosen.len();
    let k = state.assignment.num_workers();
    // Enough workers must remain to fill the set.
    for w in start..=(k - remaining_needed) {
        state.add(w);
        chosen.push(w);
        exhaustive_rec(state, q, w + 1, chosen, best);
        chosen.pop();
        state.remove(w);
    }
}

/// Exact `c_max(q)` via depth-first branch-and-bound.
///
/// The pruning bound is the *edge-budget relaxation*: with `rem` Byzantine
/// picks left, at most `rem·l` additional Byzantine file-copies can be
/// placed; distorting an undistorted file with `c` Byzantine copies costs
/// `r′ − c` of them, so the cheapest-first greedy fill of that budget is a
/// valid optimistic bound on additional distortions (it ignores which
/// copies any single worker can actually supply).
///
/// If more than `node_limit` nodes are explored the search stops and the
/// incumbent (seeded by [`cmax_greedy`]) is returned with `exact = false`.
pub fn cmax_branch_and_bound(assignment: &Assignment, q: usize, node_limit: u64) -> CmaxResult {
    let k = assignment.num_workers();
    assert!(q <= k, "cannot corrupt more workers than exist");

    // Seed the incumbent with a strong heuristic solution so pruning bites
    // immediately. A fixed seed keeps the whole computation deterministic.
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(0x42);
    let greedy = cmax_greedy(assignment, q, 24, &mut rng);

    let mut best = CmaxResult {
        value: greedy.value,
        witness: greedy.witness,
        exact: true,
        nodes_explored: 0,
    };
    let mut state = SearchState::new(assignment);
    let mut chosen = Vec::with_capacity(q);
    let mut truncated = false;
    bnb_rec(
        &mut state,
        q,
        0,
        &mut chosen,
        &mut best,
        node_limit,
        &mut truncated,
    );
    if truncated {
        best.exact = false;
    }
    best
}

fn bnb_rec(
    state: &mut SearchState<'_>,
    q: usize,
    start: usize,
    chosen: &mut Vec<usize>,
    best: &mut CmaxResult,
    node_limit: u64,
    truncated: &mut bool,
) {
    if *truncated {
        return;
    }
    best.nodes_explored += 1;
    if best.nodes_explored > node_limit {
        *truncated = true;
        return;
    }
    if state.distorted > best.value {
        best.value = state.distorted;
        best.witness = chosen.clone();
    }
    if chosen.len() == q {
        return;
    }
    let rem = q - chosen.len();
    if state.distorted + state.optimistic_additional(rem) <= best.value {
        return;
    }
    let k = state.assignment.num_workers();
    for w in start..=(k - rem) {
        state.add(w);
        chosen.push(w);
        bnb_rec(state, q, w + 1, chosen, best, node_limit, truncated);
        chosen.pop();
        state.remove(w);
    }
}

/// Greedy + swap-local-search attacker (lower bound on `c_max`).
///
/// Each restart builds a set by repeatedly adding the worker with the best
/// `(new distortions, progress toward thresholds)` marginal, breaking ties
/// randomly, then tries 1-swap improvements until a local optimum.
pub fn cmax_greedy<R: Rng + ?Sized>(
    assignment: &Assignment,
    q: usize,
    restarts: usize,
    rng: &mut R,
) -> CmaxResult {
    let k = assignment.num_workers();
    assert!(q <= k, "cannot corrupt more workers than exist");
    let mut best = CmaxResult {
        value: 0,
        witness: Vec::new(),
        exact: false,
        nodes_explored: 0,
    };
    if q == 0 {
        return best;
    }
    let mut order: Vec<usize> = (0..k).collect();
    for _ in 0..restarts.max(1) {
        order.shuffle(rng);
        let mut state = SearchState::new(assignment);
        let mut set: Vec<usize> = Vec::with_capacity(q);
        // Greedy construction.
        for _ in 0..q {
            let mut best_w = usize::MAX;
            let mut best_key = (-1i64, -1i64);
            for &w in &order {
                if set.contains(&w) {
                    continue;
                }
                let key = state.marginal_key(w);
                if key > best_key {
                    best_key = key;
                    best_w = w;
                }
            }
            state.add(best_w);
            set.push(best_w);
            best.nodes_explored += 1;
        }
        // 1-swap local search: replace any member with any outsider when
        // that strictly increases the distortion count.
        let mut improved = true;
        while improved {
            improved = false;
            'outer: for i in 0..set.len() {
                let out = set[i];
                let original = state.distorted;
                state.remove(out);
                for w in 0..k {
                    if w == out || set.contains(&w) {
                        continue;
                    }
                    best.nodes_explored += 1;
                    state.add(w);
                    if state.distorted > original {
                        set[i] = w;
                        improved = true;
                        continue 'outer;
                    }
                    state.remove(w);
                }
                state.add(out);
            }
        }
        if state.distorted > best.value {
            best.value = state.distorted;
            best.witness = {
                let mut s = set.clone();
                s.sort_unstable();
                s
            };
        }
    }
    best
}

/// Incremental search state: per-file Byzantine replica counts and the
/// running number of distorted files, with the histogram needed by the
/// optimistic bound.
struct SearchState<'a> {
    assignment: &'a Assignment,
    /// Byzantine replica count per file.
    file_counts: Vec<usize>,
    /// Number of files at or above the distortion threshold.
    distorted: usize,
    /// `hist[c]` = number of *undistorted* files with count `c`
    /// (`0 ≤ c < r′`).
    hist: Vec<usize>,
    threshold: usize,
    load: usize,
}

impl<'a> SearchState<'a> {
    fn new(assignment: &'a Assignment) -> Self {
        let threshold = assignment.majority_threshold();
        let mut hist = vec![0usize; threshold];
        hist[0] = assignment.num_files();
        SearchState {
            assignment,
            file_counts: vec![0; assignment.num_files()],
            distorted: 0,
            hist,
            threshold,
            load: assignment.load(),
        }
    }

    fn add(&mut self, worker: usize) {
        for &fidx in self.assignment.graph().files_of(worker) {
            let c = self.file_counts[fidx];
            self.file_counts[fidx] = c + 1;
            if c + 1 == self.threshold {
                self.hist[c] -= 1;
                self.distorted += 1;
            } else if c + 1 < self.threshold {
                self.hist[c] -= 1;
                self.hist[c + 1] += 1;
            }
        }
    }

    fn remove(&mut self, worker: usize) {
        for &fidx in self.assignment.graph().files_of(worker) {
            let c = self.file_counts[fidx];
            self.file_counts[fidx] = c - 1;
            if c == self.threshold {
                self.distorted -= 1;
                self.hist[c - 1] += 1;
            } else if c < self.threshold {
                self.hist[c] -= 1;
                self.hist[c - 1] += 1;
            }
        }
    }

    /// Greedy ordering key for adding `worker`: immediate new distortions
    /// first, then total progress toward thresholds.
    fn marginal_key(&self, worker: usize) -> (i64, i64) {
        let mut new_distorted = 0i64;
        let mut progress = 0i64;
        for &fidx in self.assignment.graph().files_of(worker) {
            let c = self.file_counts[fidx];
            if c + 1 == self.threshold {
                new_distorted += 1;
            } else if c + 1 < self.threshold {
                // Closer-to-threshold copies are worth more.
                progress += (c + 1) as i64;
            }
        }
        (new_distorted, progress)
    }

    /// Optimistic upper bound on additional distortions with `rem` more
    /// Byzantine workers: fill an edge budget of `rem·l` with the cheapest
    /// remaining thresholds first.
    fn optimistic_additional(&self, rem: usize) -> usize {
        let mut budget = rem * self.load;
        let mut extra = 0usize;
        // Cheapest first: files needing 1 more copy, then 2, …
        for need in 1..=self.threshold {
            let c = self.threshold - need;
            let avail = self.hist[c];
            if avail == 0 {
                continue;
            }
            let affordable = budget / need;
            let take = avail.min(affordable);
            extra += take;
            budget -= take * need;
            if budget == 0 {
                break;
            }
        }
        extra
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use byz_assign::{FrcAssignment, MolsAssignment};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn example1() -> Assignment {
        MolsAssignment::new(5, 3).unwrap().build()
    }

    #[test]
    fn count_distorted_simple() {
        let a = example1();
        // No Byzantines: nothing distorted.
        assert_eq!(count_distorted(&a, &[]), 0);
        // A single Byzantine can never reach the threshold r' = 2.
        assert_eq!(count_distorted(&a, &[0]), 0);
        // Workers 0 and 5 share exactly file 0 (Table 2).
        assert_eq!(count_distorted(&a, &[0, 5]), 1);
    }

    #[test]
    fn surviving_distortion_reduces_to_full_count() {
        // With every replica surviving, the degraded count can only
        // exceed the full-replica count on exact-half ties (the full
        // count requires >= r' = strict majority of r; with odd r they
        // coincide).
        let a = example1();
        for byz in [vec![], vec![0], vec![0, 5], vec![0, 5, 10]] {
            let full = count_distorted(&a, &byz);
            let surv = count_distorted_surviving(&a, &byz, &|_, _| true);
            assert_eq!(surv.distorted, full, "byzantine set {byz:?}");
            assert_eq!(surv.surviving_files, a.num_files());
            assert_eq!(surv.lost_files, 0);
        }
    }

    #[test]
    fn losing_honest_replicas_flips_a_majority() {
        let a = example1();
        // Workers 0 and 5 share file 0; crash every *other* replica of
        // file 0 so the two Byzantine survivors rule it — and lose all
        // replicas of file 1 entirely.
        let byz = vec![0usize, 5];
        let survives = |file: usize, worker: usize| -> bool {
            if file == 0 {
                byz.contains(&worker)
            } else {
                file != 1
            }
        };
        let surv = count_distorted_surviving(&a, &byz, &survives);
        assert_eq!(surv.lost_files, 1);
        assert_eq!(surv.surviving_files, a.num_files() - 1);
        assert!(surv.distorted >= 1, "file 0 must be counted distorted");
        // ε̂ is over surviving files.
        assert!((surv.epsilon_hat() - surv.distorted as f64 / 24.0).abs() < 1e-12);
    }

    #[test]
    fn quarantining_the_byzantine_set_zeroes_epsilon() {
        let a = example1();
        let byz = vec![0usize, 5];
        // Before quarantine the pair distorts its shared file.
        let before = count_distorted_post_quarantine(&a, &byz, &[]);
        assert_eq!(before.distorted, count_distorted(&a, &byz));
        // Perfect detection: every file keeps its honest replicas, no
        // majority is Byzantine, nothing is lost.
        let after = count_distorted_post_quarantine(&a, &byz, &byz);
        assert_eq!(after.distorted, 0);
        assert_eq!(after.lost_files, 0);
        assert_eq!(after.surviving_files, a.num_files());
        assert_eq!(after.epsilon_hat(), 0.0);
        // Partial detection helps monotonically.
        let partial = count_distorted_post_quarantine(&a, &byz, &[0]);
        assert!(partial.distorted <= before.distorted);
        // Duplicate and out-of-range quarantine ids are tolerated.
        let dup = count_distorted_post_quarantine(&a, &byz, &[0, 0, 5, 999]);
        assert_eq!(dup, after);
    }

    #[test]
    fn quarantining_every_holder_loses_the_file() {
        let a = example1();
        // File 0 lives on workers {0, 5, 10}; quarantining all three (two
        // liars plus an honest false positive) abandons the file rather
        // than distorting it.
        let out = count_distorted_post_quarantine(&a, &[0, 5], &[0, 5, 10]);
        assert_eq!(out.lost_files, 1);
        assert_eq!(out.surviving_files, a.num_files() - 1);
        assert_eq!(out.distorted, 0);
    }

    #[test]
    fn tie_breaks_to_smallest_surviving_worker() {
        let a = example1();
        // File 0's replicas live on workers {0, 5, 10}. Drop worker 10:
        // survivors {0, 5}, a 1-1 tie if exactly one is Byzantine. The
        // tie breaks to worker 0.
        let survives = |file: usize, worker: usize| !(file == 0 && worker == 10);
        let w0_byz = count_distorted_surviving(&a, &[0], &survives);
        let w5_byz = count_distorted_surviving(&a, &[5], &survives);
        assert_eq!(w0_byz.distorted, 1, "Byzantine worker 0 wins the tie");
        assert_eq!(w5_byz.distorted, 0, "honest worker 0 wins the tie");
    }

    #[test]
    fn all_lost_round_counts_nothing() {
        let a = example1();
        let surv = count_distorted_surviving(&a, &[0, 5], &|_, _| false);
        assert_eq!(surv.surviving_files, 0);
        assert_eq!(surv.lost_files, a.num_files());
        assert_eq!(surv.epsilon_hat(), 0.0);
    }

    /// Paper Table 3: simulated c_max for the (15, 25, 5, 3) MOLS scheme.
    #[test]
    fn table3_exhaustive_values() {
        let a = example1();
        let expected = [(2, 1), (3, 3), (4, 5), (5, 8)];
        for (q, c) in expected {
            let res = cmax_exhaustive(&a, q);
            assert_eq!(res.value, c, "q = {q}");
            assert!(res.exact);
            assert_eq!(count_distorted(&a, &res.witness), c);
        }
    }

    #[test]
    fn branch_and_bound_matches_exhaustive() {
        let a = example1();
        for q in 2..=7 {
            let ex = cmax_exhaustive(&a, q);
            let bb = cmax_branch_and_bound(&a, q, u64::MAX);
            assert_eq!(bb.value, ex.value, "q = {q}");
            assert!(bb.exact);
            assert!(
                bb.nodes_explored <= ex.nodes_explored,
                "B&B explored more nodes than plain enumeration at q = {q}"
            );
        }
    }

    #[test]
    fn greedy_is_a_lower_bound_and_often_tight() {
        let a = example1();
        let mut rng = StdRng::seed_from_u64(3);
        for q in 2..=7 {
            let ex = cmax_exhaustive(&a, q);
            let gr = cmax_greedy(&a, q, 16, &mut rng);
            assert!(gr.value <= ex.value, "greedy exceeded optimum at q = {q}");
            assert_eq!(count_distorted(&a, &gr.witness), gr.value);
            // On this small instance the local search should find the optimum.
            assert_eq!(gr.value, ex.value, "greedy missed optimum at q = {q}");
        }
    }

    #[test]
    fn frc_worst_case_attack() {
        // FRC with K = 15, r = 3: q = 4 Byzantines can fully corrupt
        // ⌊4/2⌋ = 2 groups of the 5.
        let a = FrcAssignment::new(15, 3).unwrap().build();
        let res = cmax_exhaustive(&a, 4);
        assert_eq!(res.value, 2);
    }

    #[test]
    fn cmax_monotone_in_q() {
        let a = example1();
        let mut prev = 0;
        for q in 0..=8 {
            let res = cmax_exhaustive(&a, q);
            assert!(res.value >= prev);
            prev = res.value;
        }
    }

    #[test]
    fn node_limit_degrades_gracefully() {
        let a = example1();
        let res = cmax_branch_and_bound(&a, 6, 1);
        assert!(!res.exact);
        // Still returns the greedy incumbent, a valid lower bound.
        assert!(res.value <= cmax_exhaustive(&a, 6).value);
        assert_eq!(count_distorted(&a, &res.witness), res.value);
    }

    #[test]
    fn graph_counter_matches_assignment_counter_on_biregular_graphs() {
        // On the unrepaired placement every file has exactly r holders,
        // so the per-holder majority equals the fixed-threshold count
        // whenever no tie arises (odd r ⇒ no ties).
        let a = example1();
        for byz in [vec![], vec![0], vec![0, 5, 10], vec![1, 2, 3, 4]] {
            let graph_count = count_distorted_graph(a.graph(), &byz);
            assert_eq!(graph_count.distorted, count_distorted(&a, &byz));
            assert_eq!(graph_count.surviving_files, a.num_files());
            assert_eq!(graph_count.lost_files, 0);
        }
    }

    #[test]
    fn graph_counter_handles_empty_and_tied_files() {
        // file 0: no holders (lost); file 1: {0, 1} (a tie breaks
        // toward the smallest holder id); file 2: {1} only.
        let graph = BipartiteGraph::from_edges(2, 3, &[(0, 1), (1, 1), (1, 2)]).unwrap();
        let against_zero = count_distorted_graph(&graph, &[0]);
        assert_eq!(against_zero.lost_files, 1);
        assert_eq!(against_zero.surviving_files, 2);
        // file 1 ties with Byzantine worker 0 as smallest holder.
        assert_eq!(against_zero.distorted, 1);
        let against_one = count_distorted_graph(&graph, &[1]);
        // file 1's tie breaks honest; file 2 is fully Byzantine.
        assert_eq!(against_one.distorted, 1);
        // Out-of-range Byzantine ids are ignored, not a panic.
        assert_eq!(count_distorted_graph(&graph, &[99]).distorted, 0);
    }

    #[test]
    fn graph_cmax_matches_assignment_cmax() {
        let a = example1();
        let members: Vec<usize> = (0..a.num_workers()).collect();
        for q in [0, 1, 2, 3] {
            let via_graph = cmax_graph_exhaustive(a.graph(), &members, q);
            let via_assignment = cmax_exhaustive(&a, q);
            assert_eq!(via_graph.value, via_assignment.value, "q = {q}");
            assert!(via_graph.exact);
        }
    }
}
