//! Property tests for the compute-kernel layer: the blocked/tiled
//! matmul (including its pooled parallel path) agrees with the naive
//! reference, the fused-transpose variants agree with materialized
//! transposes, and the vectorized sorting network agrees with scalar
//! selection — bitwise, where determinism is the contract.

use byz_kernel::{
    matmul, matmul_naive, matmul_transa, matmul_transb, median_select, parallel_chunks_mut,
    sort_columns,
};
use proptest::prelude::*;

/// Deterministic pseudo-random fill so operand sizes can depend on the
/// generated shape without nested strategies.
fn filled(len: usize, seed: u32) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let x = (i as u32).wrapping_mul(2654435761).wrapping_add(seed);
            ((x >> 8) & 0xffff) as f32 / 65536.0 - 0.5
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn blocked_matmul_matches_naive(
        m in 1usize..48,
        k in 1usize..48,
        n in 1usize..48,
        seed in 0u32..10_000,
    ) {
        let a = filled(m * k, seed);
        let b = filled(k * n, seed.wrapping_add(1));
        let mut want = vec![0.0f32; m * n];
        matmul_naive(&a, &b, &mut want, m, k, n);
        let mut got = vec![0.0f32; m * n];
        matmul(&a, &b, &mut got, m, k, n);
        for (i, (x, y)) in got.iter().zip(&want).enumerate() {
            prop_assert!((x - y).abs() <= 1e-4 * k as f32, "out[{}]: {} vs {}", i, x, y);
        }
    }

    #[test]
    fn pooled_matmul_path_matches_naive(
        m in 140usize..200,
        k in 8usize..24,
        n in 24usize..40,
        seed in 0u32..1000,
    ) {
        // Shapes past PARALLEL_THRESHOLD with more rows than one MC
        // block, so the product fans out across the pool.
        let a = filled(m * k, seed);
        let b = filled(k * n, seed.wrapping_add(2));
        let mut want = vec![0.0f32; m * n];
        matmul_naive(&a, &b, &mut want, m, k, n);
        let mut got = vec![0.0f32; m * n];
        matmul(&a, &b, &mut got, m, k, n);
        for (i, (x, y)) in got.iter().zip(&want).enumerate() {
            prop_assert!((x - y).abs() <= 1e-4 * k as f32, "out[{}]: {} vs {}", i, x, y);
        }
    }

    #[test]
    fn fused_transposes_match_materialized(
        m in 1usize..20,
        k in 1usize..20,
        n in 1usize..20,
        seed in 0u32..10_000,
    ) {
        let a = filled(m * k, seed);
        let g = filled(m * n, seed.wrapping_add(3));

        // dB = Aᵀ·G against an explicit transpose of A.
        let mut at = vec![0.0f32; k * m];
        for i in 0..m {
            for t in 0..k {
                at[t * m + i] = a[i * k + t];
            }
        }
        let mut want = vec![0.0f32; k * n];
        matmul_naive(&at, &g, &mut want, k, m, n);
        let mut got = vec![0.0f32; k * n];
        matmul_transa(&a, &g, &mut got, m, k, n);
        for (i, (x, y)) in got.iter().zip(&want).enumerate() {
            prop_assert!((x - y).abs() <= 1e-4 * m as f32, "transa[{}]: {} vs {}", i, x, y);
        }

        // dA = G·Bᵀ against an explicit transpose of B.
        let b = filled(k * n, seed.wrapping_add(4));
        let mut bt = vec![0.0f32; n * k];
        for t in 0..k {
            for j in 0..n {
                bt[j * k + t] = b[t * n + j];
            }
        }
        let mut want = vec![0.0f32; m * k];
        matmul_naive(&g, &bt, &mut want, m, n, k);
        let mut got = vec![0.0f32; m * k];
        matmul_transb(&g, &b, &mut got, m, n, k);
        for (i, (x, y)) in got.iter().zip(&want).enumerate() {
            prop_assert!((x - y).abs() <= 1e-4 * n as f32, "transb[{}]: {} vs {}", i, x, y);
        }
    }

    #[test]
    fn sorting_network_median_matches_scalar_select(
        n in 1usize..33,
        width in 1usize..20,
        seed in 0u32..10_000,
    ) {
        // The network path the coordinate-median takes: sort an n×width
        // block, read the middle row(s). Must equal per-column scalar
        // selection exactly (same order statistics, same midpoint
        // arithmetic).
        let block = filled(n * width, seed);
        let mut sorted = block.clone();
        sort_columns(&mut sorted, n, width);
        let mid = n / 2;
        for c in 0..width {
            let mut column: Vec<f32> = (0..n).map(|r| block[r * width + c]).collect();
            let want = median_select(&mut column);
            let got = if n % 2 == 1 {
                sorted[mid * width + c]
            } else {
                0.5 * (sorted[(mid - 1) * width + c] + sorted[mid * width + c])
            };
            prop_assert_eq!(got.to_bits(), want.to_bits(), "column {}", c);
        }
    }

    #[test]
    fn parallel_median_is_bit_identical_to_serial(
        d in 1usize..600,
        n in 1usize..12,
        chunk in 1usize..64,
        seed in 0u32..10_000,
    ) {
        // The aggregator pattern: one median per output coordinate,
        // fanned out in fixed-size chunks. Chunking must never change a
        // single bit relative to the serial loop.
        let gradients: Vec<Vec<f32>> =
            (0..n).map(|g| filled(d, seed.wrapping_add(g as u32))).collect();

        let mut serial = vec![0.0f32; d];
        let mut column = vec![0.0f32; n];
        for (j, o) in serial.iter_mut().enumerate() {
            for (c, g) in column.iter_mut().zip(&gradients) {
                *c = g[j];
            }
            *o = median_select(&mut column);
        }

        let mut pooled = vec![0.0f32; d];
        parallel_chunks_mut(&mut pooled, chunk, |start, piece| {
            let mut column = vec![0.0f32; n];
            for (off, o) in piece.iter_mut().enumerate() {
                for (c, g) in column.iter_mut().zip(&gradients) {
                    *c = g[start + off];
                }
                *o = median_select(&mut column);
            }
        });

        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<u32>>();
        prop_assert_eq!(bits(&serial), bits(&pooled));
    }
}
