//! Order-statistic kernels for the coordinate-wise aggregators.
//!
//! Two complementary primitives:
//!
//! * [`median_select`] / [`trimmed_sum_select`] — scalar selection over a
//!   single column via `select_nth_unstable` (introselect, expected
//!   O(n)) instead of the seed's O(n log n) sort, with the even-length
//!   midpoint taken without a second pass. These are the references the
//!   vectorized path is tested against, and the production path for
//!   rules that need an *unordered* partition (trimmed mean).
//!
//! * [`sort_columns`] — sorts many columns at once: an `n`×`width`
//!   row-major block goes through Batcher's odd-even mergesort network,
//!   where each compare-exchange is a `min`/`max` sweep across two
//!   contiguous rows. The network's O(n log² n) comparator count loses
//!   to introselect asymptotically, but every comparator is a branchless
//!   `width`-lane SIMD operation, so for the small `n` (15–25 workers)
//!   and huge `d` of robust aggregation it is several times faster than
//!   running introselect per column.
//!
//! NaN handling differs deliberately: the selection helpers order NaN
//! via `total_cmp` (above +∞, landing at the trimmed extremes), while
//! `sort_columns` uses `f32::min`/`f32::max`, which *drop* a NaN operand
//! in favor of the other value — a Byzantine NaN payload cannot poison
//! the median either way, and nothing panics.

/// Median of a mutable slice (rearranges it). Average of the two middle
/// order statistics for even lengths. Expected O(n).
///
/// # Panics
///
/// Panics on an empty slice.
pub fn median_select(values: &mut [f32]) -> f32 {
    let n = values.len();
    assert!(!values.is_empty(), "median of an empty slice");
    let mid = n / 2;
    let (low, pivot, _) = values.select_nth_unstable_by(mid, f32::total_cmp);
    if n % 2 == 1 {
        *pivot
    } else {
        // The (mid−1)-th order statistic is the maximum of the left
        // partition — no second selection pass needed.
        let lo_max = low
            .iter()
            .copied()
            .max_by(f32::total_cmp)
            .expect("even length ⇒ nonempty left partition");
        0.5 * (lo_max + *pivot)
    }
}

/// Sum and count of the order statistics with ranks `[trim, n − trim)`
/// (i.e. everything but the `trim` smallest and `trim` largest values),
/// computed with two selection passes instead of a sort. Expected O(n).
///
/// Returns `(sum, count)`; the caller divides for the trimmed mean.
///
/// # Panics
///
/// Panics unless `n > 2·trim`.
pub fn trimmed_sum_select(values: &mut [f32], trim: usize) -> (f32, usize) {
    let n = values.len();
    assert!(n > 2 * trim, "trimmed sum needs more than 2·trim values");
    let kept = if trim == 0 {
        &values[..]
    } else {
        // Partition off the `trim` smallest…
        values.select_nth_unstable_by(trim, f32::total_cmp);
        let upper = &mut values[trim..];
        // …then the `trim` largest of the remainder. After this the
        // elements with ranks [trim, n − trim) occupy upper[0..=k].
        let k = upper.len() - trim - 1;
        upper.select_nth_unstable_by(k, f32::total_cmp);
        &upper[..=k]
    };
    (kept.iter().sum(), kept.len())
}

/// Sorts each column of an `n`×`width` row-major block ascending (row 0
/// smallest) with Batcher's odd-even mergesort network.
///
/// Every compare-exchange in the network is applied to two whole rows as
/// an element-wise `min`/`max` sweep — contiguous, branchless, and
/// auto-vectorized — so all `width` columns are sorted simultaneously.
/// The comparator sequence depends only on `n`, making the data movement
/// (and therefore every downstream float operation) fully deterministic.
///
/// NaN: `f32::min`/`f32::max` return the non-NaN operand, so a NaN is
/// replaced by its comparison partner's value as it meets the network —
/// the surviving block stays NaN-free (robust aggregation treats NaN as
/// a discardable Byzantine payload).
///
/// # Panics
///
/// Panics if `block.len() != n * width`.
pub fn sort_columns(block: &mut [f32], n: usize, width: usize) {
    assert_eq!(block.len(), n * width, "block must be n × width");
    if n <= 1 {
        return;
    }
    // Batcher's odd-even mergesort for arbitrary n: merge runs of p
    // doubling; within a merge, comparator stride k halves from p. A
    // pair (a, a+k) is exchanged only when both land in the same 2p run.
    let mut p = 1;
    while p < n {
        let mut k = p;
        while k >= 1 {
            let mut j = k % p;
            while j + k < n {
                for i in 0..k.min(n - j - k) {
                    let a = i + j;
                    if a / (2 * p) == (a + k) / (2 * p) {
                        compare_exchange_rows(block, a, a + k, width);
                    }
                }
                j += 2 * k;
            }
            k /= 2;
        }
        p *= 2;
    }
}

/// One comparator of the network: row `lo` takes the element-wise
/// minimum, row `hi` the maximum.
#[inline]
fn compare_exchange_rows(block: &mut [f32], lo: usize, hi: usize, width: usize) {
    debug_assert!(lo < hi);
    let (head, tail) = block.split_at_mut(hi * width);
    let row_lo = &mut head[lo * width..(lo + 1) * width];
    let row_hi = &mut tail[..width];
    for (x, y) in row_lo.iter_mut().zip(row_hi.iter_mut()) {
        let (a, b) = (*x, *y);
        *x = a.min(b);
        *y = a.max(b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn median_sorted(values: &[f32]) -> f32 {
        let mut v = values.to_vec();
        v.sort_by(f32::total_cmp);
        let n = v.len();
        if n % 2 == 1 {
            v[n / 2]
        } else {
            0.5 * (v[n / 2 - 1] + v[n / 2])
        }
    }

    #[test]
    fn odd_and_even_medians() {
        let mut odd = [3.0f32, 1.0, 2.0];
        assert_eq!(median_select(&mut odd), 2.0);
        let mut even = [10.0f32, 1.0, 2.0, 3.0];
        assert_eq!(median_select(&mut even), 2.5);
        let mut single = [7.0f32];
        assert_eq!(median_select(&mut single), 7.0);
        let mut pair = [4.0f32, -2.0];
        assert_eq!(median_select(&mut pair), 1.0);
    }

    #[test]
    fn agrees_with_sort_based_median() {
        for seed in 0..50u32 {
            let n = 1 + (seed as usize * 7) % 24;
            let values: Vec<f32> = (0..n)
                .map(|i| (((seed as usize * 31 + i * 17) % 101) as f32) * 0.37 - 18.0)
                .collect();
            let mut scratch = values.clone();
            assert_eq!(
                median_select(&mut scratch),
                median_sorted(&values),
                "n={n} seed={seed}"
            );
        }
    }

    #[test]
    fn nan_does_not_panic() {
        let mut v = [1.0f32, f32::NAN, 2.0, 1.5, 1.2];
        let m = median_select(&mut v);
        assert!(m.is_finite());
    }

    #[test]
    fn trimmed_sum_drops_extremes() {
        let mut v = [-100.0f32, 1.0, 2.0, 3.0, 100.0];
        let (sum, count) = trimmed_sum_select(&mut v, 1);
        assert_eq!(count, 3);
        assert_eq!(sum, 6.0);

        let mut v = [5.0f32, 1.0];
        let (sum, count) = trimmed_sum_select(&mut v, 0);
        assert_eq!((sum, count), (6.0, 2));
    }

    #[test]
    fn sort_columns_sorts_every_column_for_all_small_n() {
        // The comparator sequence depends only on n — checking random
        // data for every n up to twice the realistic worker count
        // exercises every network this crate will ever run.
        for n in 1..=40usize {
            for width in [1usize, 3, 8] {
                let mut block: Vec<f32> = (0..n * width)
                    .map(|i| {
                        let x = (i as u32)
                            .wrapping_mul(2654435761)
                            .wrapping_add(97 * n as u32);
                        ((x >> 7) & 0x3fff) as f32 * 0.01 - 80.0
                    })
                    .collect();
                let mut want: Vec<Vec<f32>> = (0..width)
                    .map(|c| {
                        let mut col: Vec<f32> = (0..n).map(|r| block[r * width + c]).collect();
                        col.sort_by(f32::total_cmp);
                        col
                    })
                    .collect();
                sort_columns(&mut block, n, width);
                for c in 0..width {
                    let got: Vec<f32> = (0..n).map(|r| block[r * width + c]).collect();
                    assert_eq!(got, want.remove(0), "n={n} width={width} col={c}");
                }
            }
        }
    }

    #[test]
    fn sort_columns_drops_nan_without_panicking() {
        let mut block = vec![2.0f32, f32::NAN, 1.0, 3.0]; // one column of 4
        sort_columns(&mut block, 4, 1);
        assert!(block.iter().all(|v| v.is_finite()));
        assert!(block.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn trimmed_sum_matches_sorted_reference() {
        for seed in 0..30u32 {
            let n = 5 + (seed as usize) % 20;
            let trim = (seed as usize) % (n / 2);
            let values: Vec<f32> = (0..n)
                .map(|i| (((seed as usize * 13 + i * 29) % 97) as f32) * 0.11 - 5.0)
                .collect();
            let mut sorted = values.clone();
            sorted.sort_by(f32::total_cmp);
            let expect: f32 = sorted[trim..n - trim].iter().sum();
            let mut scratch = values.clone();
            let (sum, count) = trimmed_sum_select(&mut scratch, trim);
            assert_eq!(count, n - 2 * trim);
            assert!((sum - expect).abs() < 1e-4, "n={n} trim={trim}");
        }
    }
}
