//! Shared parallel compute kernels for the ByzShield hot paths.
//!
//! The paper's headline claim is *efficiency*: redundancy `r` multiplies
//! per-worker compute, so the speed of the gradient/aggregation kernels
//! directly governs the reproduced per-iteration timing curves (Fig. 12).
//! This crate concentrates those kernels in one place so every consumer
//! (`byz-tensor`, `byz-nn`, `byz-aggregate`, `byz-cluster`) shares the
//! same machinery:
//!
//! * [`pool`] — a persistent, lazily-initialized worker pool over
//!   crossbeam channels with a [`parallel_chunks`] primitive for
//!   data-parallel loops. Threads are spawned once per process (sized
//!   from `std::thread::available_parallelism`, overridable with the
//!   `BYZ_KERNEL_THREADS` env var) instead of per round.
//! * [`matmul`] — a cache-blocked, register-tiled f32 GEMM
//!   (`out += A·B`) with fused [`matmul_transa`] / [`matmul_transb`]
//!   variants so backward passes never materialize transposed operands.
//! * [`buffer`] — a thread-local [`with_scratch`] buffer pool so hot
//!   loops (autograd backward closures, per-coordinate aggregation
//!   columns) stop allocating a fresh `Vec` per call.
//! * [`select`] — order-statistic kernels: O(n) selection
//!   ([`median_select`], [`trimmed_sum_select`]) replacing full
//!   per-coordinate sorts, and a vectorized many-columns-at-once
//!   sorting network ([`sort_columns`]) for the coordinate-median
//!   hot path.
//! * [`update`] — chunk-parallel SGD-with-momentum steps
//!   ([`sgd_momentum_step`]) so the post-aggregation model update stops
//!   being a single-threaded walk over every parameter.
//!
//! # Determinism contract
//!
//! Every parallel kernel partitions its output into fixed-size chunks
//! and computes each output element with a fixed sequential reduction
//! order. The partition depends only on the problem shape — never on the
//! pool size or on scheduling — so results are bitwise identical from
//! run to run and across thread counts, preserving the simulator's
//! reproducibility guarantees.

pub mod buffer;
pub mod matmul;
pub mod pool;
pub mod select;
pub mod update;

pub use buffer::with_scratch;
pub use matmul::{matmul, matmul_naive, matmul_transa, matmul_transb};
pub use pool::{num_threads, parallel_chunks, parallel_chunks_mut};
pub use select::{median_select, sort_columns, trimmed_sum_select};
pub use update::{sgd_momentum_step, sgd_momentum_velocity_step, UPDATE_CHUNK};
