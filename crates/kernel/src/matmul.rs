//! Cache-blocked, register-tiled f32 matrix multiplication.
//!
//! Follows the Goto/BLIS decomposition: the operand matrices are packed
//! into contiguous, zero-padded panels sized for the cache hierarchy
//! (`KC`×`NC` of B, `MC`×`KC` of A), and the innermost computation is a
//! register-resident `mr`×`nr` micro-kernel.
//!
//! The register tile is selected once at runtime: on x86-64 with AVX2 and
//! FMA a 6×16 micro-kernel written with `std::arch` intrinsics (twelve
//! 8-lane accumulators — the classic BLIS/Haswell shape); elsewhere a
//! portable 4×8 kernel whose inner loop is written to auto-vectorize on
//! the target's baseline (SSE2, NEON, …). Both accumulate the full
//! `kc`-deep dot products in registers, which is where the win over the
//! naive row-scaled triple loop comes from: the naive loop streams the
//! whole output row through memory once per depth step, the micro-kernel
//! touches C exactly once per `KC` block.
//!
//! Large products additionally fan row-blocks out across the persistent
//! [`crate::pool`]. The row partition depends only on the shapes (blocks
//! of `MC` rows), each output element is written by exactly one task, and
//! the `KC` blocks are accumulated in ascending order — so results are
//! bitwise identical no matter how many threads the pool has (including
//! the inline single-thread path). The micro-kernel choice is a
//! process-wide constant, so repeated runs on one machine are bitwise
//! reproducible too; across machines, FMA vs. mul+add rounding may
//! differ — the same caveat as any BLAS.
//!
//! All entry points *accumulate* (`out += …`): the autograd engine adds
//! into gradient buffers, so `+=` is the primitive. Callers wanting a
//! plain product zero `out` first. [`matmul_transa`] / [`matmul_transb`]
//! fuse the transposes the backward pass needs (`dB = Aᵀ·G`,
//! `dA = G·Bᵀ`) into the packing closures, so no transposed copy is ever
//! materialized.

use crate::buffer::with_scratch;
use crate::pool::parallel_chunks_mut;
use std::sync::OnceLock;

/// Rows of A (and C) per cache block — the A block is `MC`×`KC`.
const MC: usize = 128;
/// Depth (shared dimension) per cache block.
const KC: usize = 256;
/// Columns of B (and C) per cache block — the B block is `KC`×`NC`.
const NC: usize = 256;

/// Below this many multiply-adds the whole product runs on the calling
/// thread — the fan-out bookkeeping would dominate.
const PARALLEL_THRESHOLD: usize = 1 << 16;

/// A micro-kernel: `c[i][j] += Σ_p apan[p·mr + i] · bpan[p·nr + j]` over
/// an `h`×`w` corner of the `mr`×`nr` tile (`h = mr`, `w = nr` except at
/// the ragged right/bottom edges). `apan`/`bpan` are packed panels `kc`
/// steps deep; `c` points at the tile's top-left element, row stride
/// `ldc`.
///
/// # Safety
///
/// Callable only if the CPU features it was compiled for are present
/// (guaranteed by [`tile`]), with panels at least `kc·mr` / `kc·nr` long
/// and `c` valid for the `h`×`w` region at stride `ldc`.
type MicroKernel = unsafe fn(
    apan: *const f32,
    bpan: *const f32,
    c: *mut f32,
    ldc: usize,
    kc: usize,
    h: usize,
    w: usize,
);

/// The register tile selected for this process.
#[derive(Clone, Copy)]
struct Tile {
    mr: usize,
    nr: usize,
    micro: MicroKernel,
}

/// Detects the best available micro-kernel once per process.
fn tile() -> Tile {
    static TILE: OnceLock<Tile> = OnceLock::new();
    *TILE.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            return Tile {
                mr: 6,
                nr: 16,
                micro: micro_6x16_avx2_fma,
            };
        }
        Tile {
            mr: 4,
            nr: 8,
            micro: micro_4x8_portable,
        }
    })
}

/// `out += A·B` — the seed's naive i-k-j loop (with zero-skip), kept as
/// the serial reference for property tests and benchmark baselines.
pub fn matmul_naive(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "lhs shape mismatch");
    assert_eq!(b.len(), k * n, "rhs shape mismatch");
    assert_eq!(out.len(), m * n, "output shape mismatch");
    for i in 0..m {
        for p in 0..k {
            let av = a[i * k + p];
            if av == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            let orow = &mut out[i * n..(i + 1) * n];
            for (o, bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
}

/// `out += A·B` where A is `m`×`k` and B is `k`×`n`, all row-major.
pub fn matmul(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "lhs shape mismatch");
    assert_eq!(b.len(), k * n, "rhs shape mismatch");
    assert_eq!(out.len(), m * n, "output shape mismatch");
    gemm(m, k, n, &|i, p| a[i * k + p], &|p, j| b[p * n + j], out);
}

/// `out += Aᵀ·G` where A is `m`×`k` and G is `m`×`n`: the `k`×`n` weight
/// gradient of the backward pass, with A's transpose fused into packing.
pub fn matmul_transa(a: &[f32], g: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "lhs shape mismatch");
    assert_eq!(g.len(), m * n, "grad shape mismatch");
    assert_eq!(out.len(), k * n, "output shape mismatch");
    gemm(k, m, n, &|t, i| a[i * k + t], &|i, j| g[i * n + j], out);
}

/// `out += G·Bᵀ` where G is `m`×`n` and B is `k`×`n`: the `m`×`k` input
/// gradient of the backward pass, with B's transpose fused into packing.
pub fn matmul_transb(g: &[f32], b: &[f32], out: &mut [f32], m: usize, n: usize, k: usize) {
    assert_eq!(g.len(), m * n, "grad shape mismatch");
    assert_eq!(b.len(), k * n, "rhs shape mismatch");
    assert_eq!(out.len(), m * k, "output shape mismatch");
    gemm(m, n, k, &|i, j| g[i * n + j], &|j, t| b[t * n + j], out);
}

/// Shared driver: `out[i·cols + j] += Σ_p a_get(i,p) · b_get(p,j)`.
///
/// Small products run serially; large ones split `out` into blocks of
/// `MC` rows on the pool. The split depends only on the shapes, so the
/// result is identical for every pool size.
fn gemm<A, B>(rows: usize, depth: usize, cols: usize, a_get: &A, b_get: &B, out: &mut [f32])
where
    A: Fn(usize, usize) -> f32 + Sync,
    B: Fn(usize, usize) -> f32 + Sync,
{
    if rows == 0 || depth == 0 || cols == 0 {
        return;
    }
    let t = tile();
    if rows * depth * cols < PARALLEL_THRESHOLD || rows <= MC {
        gemm_serial(rows, depth, cols, a_get, b_get, out, t);
        return;
    }
    parallel_chunks_mut(out, MC * cols, |start, piece| {
        let i0 = start / cols;
        gemm_serial(
            piece.len() / cols,
            depth,
            cols,
            &|i, p| a_get(i0 + i, p),
            b_get,
            piece,
            t,
        );
    });
}

/// One thread's worth of blocked GEMM over a row-slice of C.
fn gemm_serial<A, B>(
    rows: usize,
    depth: usize,
    cols: usize,
    a_get: &A,
    b_get: &B,
    out: &mut [f32],
    t: Tile,
) where
    A: Fn(usize, usize) -> f32 + ?Sized,
    B: Fn(usize, usize) -> f32 + ?Sized,
{
    // Panel buffers, rounded up to whole mr/nr panels of zero padding.
    with_scratch(KC * (NC + t.nr), |bp| {
        with_scratch((MC + t.mr) * KC, |ap| {
            for jc in (0..cols).step_by(NC) {
                let nc = NC.min(cols - jc);
                let n_panels = nc.div_ceil(t.nr);
                for pc in (0..depth).step_by(KC) {
                    let kc = KC.min(depth - pc);
                    pack_b(bp, b_get, pc, jc, kc, nc, t.nr);
                    for ic in (0..rows).step_by(MC) {
                        let mc = MC.min(rows - ic);
                        let m_panels = mc.div_ceil(t.mr);
                        pack_a(ap, a_get, ic, pc, mc, kc, t.mr);
                        for jp in 0..n_panels {
                            let j0 = jp * t.nr;
                            let w = t.nr.min(nc - j0);
                            let bpan = &bp[jp * kc * t.nr..];
                            for ip in 0..m_panels {
                                let i0 = ip * t.mr;
                                let h = t.mr.min(mc - i0);
                                let apan = &ap[ip * kc * t.mr..];
                                let c = out[(ic + i0) * cols + jc + j0..].as_mut_ptr();
                                // SAFETY: `tile()` only returns kernels
                                // whose CPU features were detected; the
                                // panels hold `kc` packed steps and `c`
                                // addresses an in-bounds h×w region of
                                // `out` at row stride `cols`.
                                unsafe {
                                    (t.micro)(apan.as_ptr(), bpan.as_ptr(), c, cols, kc, h, w)
                                };
                            }
                        }
                    }
                }
            }
        });
    });
}

/// Packs the `kc`×`nc` block of B at `(pc, jc)` into `nr`-wide column
/// panels: `bp[panel·kc·nr + p·nr + l] = B[pc+p, jc+panel·nr+l]`, zero
/// padded past `nc`.
fn pack_b<B>(bp: &mut [f32], b_get: &B, pc: usize, jc: usize, kc: usize, nc: usize, nr: usize)
where
    B: Fn(usize, usize) -> f32 + ?Sized,
{
    for panel in 0..nc.div_ceil(nr) {
        let j0 = panel * nr;
        let w = nr.min(nc - j0);
        let dst = &mut bp[panel * kc * nr..(panel + 1) * kc * nr];
        for p in 0..kc {
            let row = &mut dst[p * nr..(p + 1) * nr];
            for (l, slot) in row.iter_mut().enumerate() {
                *slot = if l < w {
                    b_get(pc + p, jc + j0 + l)
                } else {
                    0.0
                };
            }
        }
    }
}

/// Packs the `mc`×`kc` block of A at `(ic, pc)` into `mr`-tall row
/// panels: `ap[panel·kc·mr + p·mr + r] = A[ic+panel·mr+r, pc+p]`, zero
/// padded past `mc`.
fn pack_a<A>(ap: &mut [f32], a_get: &A, ic: usize, pc: usize, mc: usize, kc: usize, mr: usize)
where
    A: Fn(usize, usize) -> f32 + ?Sized,
{
    for panel in 0..mc.div_ceil(mr) {
        let i0 = panel * mr;
        let h = mr.min(mc - i0);
        let dst = &mut ap[panel * kc * mr..(panel + 1) * kc * mr];
        for p in 0..kc {
            let col = &mut dst[p * mr..(p + 1) * mr];
            for (r, slot) in col.iter_mut().enumerate() {
                *slot = if r < h {
                    a_get(ic + i0 + r, pc + p)
                } else {
                    0.0
                };
            }
        }
    }
}

/// Portable 4×8 micro-kernel. The accumulator block is a flat array the
/// compiler keeps in vector registers; the depth loop auto-vectorizes on
/// SSE2/NEON baselines.
///
/// # Safety
///
/// See [`MicroKernel`]. No CPU-feature requirement.
unsafe fn micro_4x8_portable(
    apan: *const f32,
    bpan: *const f32,
    c: *mut f32,
    ldc: usize,
    kc: usize,
    h: usize,
    w: usize,
) {
    const MR: usize = 4;
    const NR: usize = 8;
    let ap = std::slice::from_raw_parts(apan, kc * MR);
    let bp = std::slice::from_raw_parts(bpan, kc * NR);
    let mut acc = [[0.0f32; NR]; MR];
    for (a, b) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)) {
        for i in 0..MR {
            let ai = a[i];
            for j in 0..NR {
                acc[i][j] += ai * b[j];
            }
        }
    }
    for (i, acc_row) in acc.iter().enumerate().take(h) {
        let row = c.add(i * ldc);
        for (j, v) in acc_row.iter().enumerate().take(w) {
            *row.add(j) += v;
        }
    }
}

/// 6×16 AVX2+FMA micro-kernel: twelve 8-lane accumulators (the BLIS
/// Haswell shape), two B loads and six A broadcasts per depth step.
///
/// # Safety
///
/// See [`MicroKernel`]. Requires AVX2 and FMA (checked by [`tile`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn micro_6x16_avx2_fma(
    apan: *const f32,
    bpan: *const f32,
    c: *mut f32,
    ldc: usize,
    kc: usize,
    h: usize,
    w: usize,
) {
    use std::arch::x86_64::*;
    const MR: usize = 6;
    const NR: usize = 16;
    let mut acc = [[_mm256_setzero_ps(); 2]; MR];
    for p in 0..kc {
        let b0 = _mm256_loadu_ps(bpan.add(p * NR));
        let b1 = _mm256_loadu_ps(bpan.add(p * NR + 8));
        for (i, acc_row) in acc.iter_mut().enumerate() {
            let ai = _mm256_set1_ps(*apan.add(p * MR + i));
            acc_row[0] = _mm256_fmadd_ps(ai, b0, acc_row[0]);
            acc_row[1] = _mm256_fmadd_ps(ai, b1, acc_row[1]);
        }
    }
    if w == NR {
        for (i, acc_row) in acc.iter().enumerate().take(h) {
            let row = c.add(i * ldc);
            _mm256_storeu_ps(row, _mm256_add_ps(_mm256_loadu_ps(row), acc_row[0]));
            let hi = row.add(8);
            _mm256_storeu_ps(hi, _mm256_add_ps(_mm256_loadu_ps(hi), acc_row[1]));
        }
    } else {
        let mut tmp = [0.0f32; NR];
        for (i, acc_row) in acc.iter().enumerate().take(h) {
            _mm256_storeu_ps(tmp.as_mut_ptr(), acc_row[0]);
            _mm256_storeu_ps(tmp.as_mut_ptr().add(8), acc_row[1]);
            let row = c.add(i * ldc);
            for (j, v) in tmp.iter().enumerate().take(w) {
                *row.add(j) += v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(len: usize, seed: u32) -> Vec<f32> {
        (0..len)
            .map(|i| {
                let x = (i as u32).wrapping_mul(2654435761).wrapping_add(seed);
                ((x >> 8) & 0xffff) as f32 / 65536.0 - 0.5
            })
            .collect()
    }

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() <= tol, "index {i}: {x} vs {y}");
        }
    }

    #[test]
    fn matches_naive_over_shapes() {
        // Full tiles, ragged edges in every dimension, degenerate
        // vectors, and shapes crossing the cache-block boundaries.
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (3, 5, 7),
            (4, 8, 8),
            (6, 16, 16),
            (17, 9, 23),
            (64, 64, 64),
            (65, 129, 67),
            (70, 300, 70),
            (1, 300, 1),
        ] {
            let a = filled(m * k, 1);
            let b = filled(k * n, 2);
            let mut want = vec![0.0f32; m * n];
            matmul_naive(&a, &b, &mut want, m, k, n);
            let mut got = vec![0.0f32; m * n];
            matmul(&a, &b, &mut got, m, k, n);
            assert_close(&got, &want, 1e-4 * k as f32);
        }
    }

    #[test]
    fn accumulates_into_out() {
        let a = [1.0f32, 2.0];
        let b = [3.0f32, 4.0];
        let mut out = [10.0f32];
        matmul(&a, &b, &mut out, 1, 2, 1);
        assert_eq!(out[0], 10.0 + 11.0);
    }

    #[test]
    fn transa_matches_explicit_transpose() {
        let (m, k, n) = (13usize, 6usize, 9usize);
        let a = filled(m * k, 3);
        let g = filled(m * n, 4);
        let mut at = vec![0.0f32; k * m];
        for i in 0..m {
            for t in 0..k {
                at[t * m + i] = a[i * k + t];
            }
        }
        let mut want = vec![0.0f32; k * n];
        matmul_naive(&at, &g, &mut want, k, m, n);
        let mut got = vec![0.0f32; k * n];
        matmul_transa(&a, &g, &mut got, m, k, n);
        assert_close(&got, &want, 1e-4 * m as f32);
    }

    #[test]
    fn transb_matches_explicit_transpose() {
        let (m, n, k) = (11usize, 8usize, 14usize);
        let g = filled(m * n, 5);
        let b = filled(k * n, 6);
        let mut bt = vec![0.0f32; n * k];
        for t in 0..k {
            for j in 0..n {
                bt[j * k + t] = b[t * n + j];
            }
        }
        let mut want = vec![0.0f32; m * k];
        matmul_naive(&g, &bt, &mut want, m, n, k);
        let mut got = vec![0.0f32; m * k];
        matmul_transb(&g, &b, &mut got, m, n, k);
        assert_close(&got, &want, 1e-4 * n as f32);
    }

    #[test]
    fn parallel_path_is_deterministic() {
        // Big enough to cross PARALLEL_THRESHOLD and span several MC row
        // blocks: repeated runs must agree bitwise.
        let (m, k, n) = (150usize, 64usize, 48usize);
        let a = filled(m * k, 7);
        let b = filled(k * n, 8);
        let mut first = vec![0.0f32; m * n];
        matmul(&a, &b, &mut first, m, k, n);
        for _ in 0..3 {
            let mut again = vec![0.0f32; m * n];
            matmul(&a, &b, &mut again, m, k, n);
            let same = first
                .iter()
                .zip(&again)
                .all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(same, "parallel matmul not bitwise deterministic");
        }
    }
}
