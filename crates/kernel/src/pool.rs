//! A persistent worker pool for data-parallel loops.
//!
//! The pool is created lazily on first use and lives for the rest of the
//! process, so hot paths (a cluster round, a matmul, an aggregation pass)
//! never pay thread-spawn latency. Work arrives as chunk-sized jobs over
//! a crossbeam channel; any idle worker picks the next job up
//! (work-stealing-ish: there is a single shared injector queue, and the
//! submitting thread also drains it while waiting, so the pool can never
//! deadlock even when a pool worker itself submits nested parallel work —
//! nested calls simply run inline).
//!
//! Determinism: [`parallel_chunks`] assigns chunk `c` the index range
//! `[c·chunk, min(len, (c+1)·chunk))`. Which thread executes a chunk is
//! scheduling-dependent, but chunks write disjoint outputs and each chunk
//! is processed sequentially, so the result is independent of both the
//! schedule and the pool size.

use crossbeam::channel::{unbounded, Receiver, Sender};
use std::any::Any;
use std::cell::Cell;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

type Job = Box<dyn FnOnce() + Send>;

struct Pool {
    sender: Sender<Job>,
    receiver: Receiver<Job>,
    /// Configured parallelism (including the submitting thread); the pool
    /// spawns `threads - 1` workers and the submitter participates.
    threads: usize,
}

static POOL: OnceLock<Pool> = OnceLock::new();

thread_local! {
    /// Set on pool worker threads; nested parallel calls run inline.
    static IS_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

fn configured_threads() -> usize {
    if let Ok(v) = std::env::var("BYZ_KERNEL_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn global() -> &'static Pool {
    POOL.get_or_init(|| {
        let threads = configured_threads();
        let (sender, receiver) = unbounded::<Job>();
        for i in 0..threads.saturating_sub(1) {
            let rx = receiver.clone();
            std::thread::Builder::new()
                .name(format!("byz-kernel-{i}"))
                .spawn(move || {
                    IS_POOL_WORKER.with(|f| f.set(true));
                    while let Ok(job) = rx.recv() {
                        job();
                    }
                })
                .expect("failed to spawn kernel pool worker");
        }
        Pool {
            sender,
            receiver,
            threads,
        }
    })
}

/// The pool's configured parallelism (≥ 1). Useful for sizing chunk
/// counts in benchmarks and diagnostics.
pub fn num_threads() -> usize {
    global().threads
}

/// Per-call completion latch plus panic propagation.
struct CallState {
    remaining: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl CallState {
    fn new(jobs: usize) -> Self {
        CallState {
            remaining: Mutex::new(jobs),
            done: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    fn finish_one(&self) {
        let mut remaining = self.remaining.lock().expect("latch poisoned");
        *remaining -= 1;
        if *remaining == 0 {
            self.done.notify_all();
        }
    }

    fn record_panic(&self, payload: Box<dyn Any + Send>) {
        let mut slot = self.panic.lock().expect("panic slot poisoned");
        if slot.is_none() {
            *slot = Some(payload);
        }
    }
}

/// Runs `f` over the ranges `[c·chunk, min(len, (c+1)·chunk))` for every
/// chunk index `c`, in parallel on the persistent pool.
///
/// The chunk partition depends only on `(len, chunk)`, so output written
/// through disjoint chunks is bitwise-deterministic regardless of pool
/// size or scheduling. Panics raised inside `f` are propagated to the
/// caller after all chunks have completed.
///
/// # Panics
///
/// Panics if `chunk == 0`.
pub fn parallel_chunks<F>(len: usize, chunk: usize, f: F)
where
    F: Fn(Range<usize>) + Sync,
{
    assert!(chunk > 0, "chunk size must be positive");
    if len == 0 {
        return;
    }
    let n_chunks = len.div_ceil(chunk);
    let pool = global();
    let run_inline = n_chunks == 1 || pool.threads == 1 || IS_POOL_WORKER.with(|flag| flag.get());
    if run_inline {
        for c in 0..n_chunks {
            f(c * chunk..len.min((c + 1) * chunk));
        }
        return;
    }

    // SAFETY: every job dispatched below signals `CallState::finish_one`
    // after running (even on panic, via catch_unwind), and this function
    // does not return until `remaining == 0`. The borrowed closure
    // therefore strictly outlives every use of the transmuted reference.
    let f_ref: &(dyn Fn(Range<usize>) + Sync) = &f;
    let f_static: &'static (dyn Fn(Range<usize>) + Sync) = unsafe { std::mem::transmute(f_ref) };

    let state = Arc::new(CallState::new(n_chunks));
    for c in 0..n_chunks {
        let range = c * chunk..len.min((c + 1) * chunk);
        let state = Arc::clone(&state);
        let job: Job = Box::new(move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f_static(range))) {
                state.record_panic(payload);
            }
            state.finish_one();
        });
        pool.sender.send(job).expect("kernel pool channel closed");
    }

    // Participate: drain the shared queue while waiting. Jobs popped here
    // may belong to other concurrent calls — that still makes progress.
    loop {
        {
            let remaining = state.remaining.lock().expect("latch poisoned");
            if *remaining == 0 {
                break;
            }
        }
        match pool.receiver.try_recv() {
            Ok(job) => job(),
            Err(_) => {
                let remaining = state.remaining.lock().expect("latch poisoned");
                if *remaining == 0 {
                    break;
                }
                // Short timeout so newly queued jobs are picked up even if
                // a notify races with this wait.
                let _unused = state
                    .done
                    .wait_timeout(remaining, Duration::from_micros(200))
                    .expect("latch poisoned");
            }
        }
    }

    let payload = state.panic.lock().expect("panic slot poisoned").take();
    if let Some(payload) = payload {
        resume_unwind(payload);
    }
}

/// Wrapper making a raw pointer range Sendable for disjoint-chunk writes.
struct SendPtr<T>(*mut T);
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Method (not field) access so closures capture the whole wrapper —
    /// edition-2021 precise capture would otherwise grab the bare pointer.
    fn get(&self) -> *mut T {
        self.0
    }
}

/// Splits `data` into consecutive `chunk`-sized pieces and runs
/// `f(start_index, piece)` for each piece in parallel. Pieces are
/// disjoint, so each element is written by exactly one task.
///
/// # Panics
///
/// Panics if `chunk == 0`.
pub fn parallel_chunks_mut<T, F>(data: &mut [T], chunk: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let len = data.len();
    let base = SendPtr(data.as_mut_ptr());
    parallel_chunks(len, chunk, |range| {
        // SAFETY: ranges produced by parallel_chunks are disjoint and in
        // bounds, so each task gets exclusive access to its sub-slice.
        let slice = unsafe {
            std::slice::from_raw_parts_mut(base.get().add(range.start), range.end - range.start)
        };
        f(range.start, slice);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn covers_every_index_exactly_once() {
        for &(len, chunk) in &[
            (0usize, 3usize),
            (1, 1),
            (10, 3),
            (17, 4),
            (100, 7),
            (64, 64),
        ] {
            let mut hits = vec![0u8; len];
            parallel_chunks_mut(&mut hits, chunk, |_, piece| {
                for h in piece {
                    *h += 1;
                }
            });
            assert!(hits.iter().all(|&h| h == 1), "len={len} chunk={chunk}");
        }
    }

    #[test]
    fn start_indices_match_content() {
        let mut data: Vec<usize> = vec![0; 101];
        parallel_chunks_mut(&mut data, 8, |start, piece| {
            for (off, v) in piece.iter_mut().enumerate() {
                *v = start + off;
            }
        });
        let expect: Vec<usize> = (0..101).collect();
        assert_eq!(data, expect);
    }

    #[test]
    fn nested_calls_run_inline_without_deadlock() {
        let counter = AtomicUsize::new(0);
        parallel_chunks(16, 1, |_outer| {
            parallel_chunks(8, 2, |inner| {
                counter.fetch_add(inner.len(), Ordering::Relaxed);
            });
        });
        assert_eq!(counter.load(Ordering::Relaxed), 16 * 8);
    }

    #[test]
    fn concurrent_top_level_calls() {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    let mut out = vec![0u32; 1000];
                    parallel_chunks_mut(&mut out, 64, |start, piece| {
                        for (off, v) in piece.iter_mut().enumerate() {
                            *v = (start + off) as u32;
                        }
                    });
                    out.iter().map(|&v| v as u64).sum::<u64>()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 999 * 1000 / 2);
        }
    }

    #[test]
    fn panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            parallel_chunks(32, 1, |range| {
                if range.start == 17 {
                    panic!("boom");
                }
            });
        });
        assert!(result.is_err());
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(num_threads() >= 1);
    }
}
