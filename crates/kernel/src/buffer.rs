//! Thread-local scratch-buffer reuse.
//!
//! Autograd backward closures and per-coordinate aggregation loops need
//! short-lived `f32` buffers on every call. Allocating a fresh `Vec` per
//! op dominates small-op cost; instead each thread keeps a small stack of
//! recycled buffers and [`with_scratch`] hands out a zeroed slice.

use std::cell::RefCell;

/// Maximum number of buffers parked per thread; excess buffers are freed.
const MAX_POOLED: usize = 8;

thread_local! {
    static BUFFERS: RefCell<Vec<Vec<f32>>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` with a zero-filled scratch slice of length `len`, recycled
/// from a thread-local pool. Nested calls are fine — each call takes its
/// own buffer. The buffer's contents are discarded after `f` returns.
pub fn with_scratch<R>(len: usize, f: impl FnOnce(&mut [f32]) -> R) -> R {
    let mut buf = BUFFERS
        .with(|pool| pool.borrow_mut().pop())
        .unwrap_or_default();
    buf.clear();
    buf.resize(len, 0.0);
    let result = f(&mut buf);
    BUFFERS.with(|pool| {
        let mut pool = pool.borrow_mut();
        if pool.len() < MAX_POOLED {
            pool.push(buf);
        }
    });
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_is_zeroed_and_sized() {
        with_scratch(16, |buf| {
            assert_eq!(buf.len(), 16);
            assert!(buf.iter().all(|&v| v == 0.0));
            buf.fill(7.5);
        });
        // A recycled buffer must come back zeroed.
        with_scratch(32, |buf| {
            assert_eq!(buf.len(), 32);
            assert!(buf.iter().all(|&v| v == 0.0));
        });
    }

    #[test]
    fn nested_scratch_buffers_are_distinct() {
        with_scratch(8, |a| {
            a.fill(1.0);
            with_scratch(8, |b| {
                b.fill(2.0);
                assert!(a.iter().all(|&v| v == 1.0));
            });
            assert!(a.iter().all(|&v| v == 1.0));
        });
    }

    #[test]
    fn zero_length_scratch() {
        with_scratch(0, |buf| assert!(buf.is_empty()));
    }
}
