//! Pool-parallel SGD-with-momentum update kernels.
//!
//! The model update is the last serial stage of a training round: once the
//! per-file votes are folded and aggregated, the PS walks every parameter
//! once (`v = μ·v + g·scale; p -= lr·v`). At d = 1M+ coordinates that walk
//! is worth spreading over the persistent pool, and because the recurrence
//! is purely elementwise, any chunk partition produces bitwise-identical
//! results — each coordinate's arithmetic is a fixed sequential expression
//! independent of which chunk (or thread) evaluates it.
//!
//! Chunk size is a fixed constant derived from nothing but the problem
//! shape, never from the pool size, per the crate-wide determinism
//! contract.

use crate::pool::parallel_chunks;

/// Fixed chunk length for update kernels. Large enough that per-chunk
/// dispatch overhead is negligible, small enough to split d = 1M across
/// any realistic pool.
pub const UPDATE_CHUNK: usize = 16_384;

/// Local copy of the pool's Send wrapper for disjoint raw-pointer writes.
struct SendPtr<T>(*mut T);
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    fn get(&self) -> *mut T {
        self.0
    }
}

/// In-place SGD-with-momentum step over flat parameter/velocity vectors:
///
/// ```text
/// v[i] = momentum * v[i] + gradient[i] * scale
/// p[i] -= lr * v[i]
/// ```
///
/// Runs chunk-parallel on the `byz-kernel` pool. Elementwise, so the
/// result is bitwise identical to the scalar loop at any
/// `BYZ_KERNEL_THREADS`.
///
/// # Panics
///
/// Panics if the three slices disagree in length.
pub fn sgd_momentum_step(
    params: &mut [f32],
    velocity: &mut [f32],
    gradient: &[f32],
    scale: f32,
    lr: f32,
    momentum: f32,
) {
    assert_eq!(params.len(), velocity.len(), "params/velocity length");
    assert_eq!(params.len(), gradient.len(), "params/gradient length");
    let p_base = SendPtr(params.as_mut_ptr());
    let v_base = SendPtr(velocity.as_mut_ptr());
    parallel_chunks(gradient.len(), UPDATE_CHUNK, |range| {
        let len = range.end - range.start;
        // SAFETY: parallel_chunks hands out disjoint in-bounds ranges, so
        // each task has exclusive access to its params/velocity windows.
        let (p, v) = unsafe {
            (
                std::slice::from_raw_parts_mut(p_base.get().add(range.start), len),
                std::slice::from_raw_parts_mut(v_base.get().add(range.start), len),
            )
        };
        let g = &gradient[range];
        for ((pi, vi), gi) in p.iter_mut().zip(v.iter_mut()).zip(g) {
            *vi = momentum * *vi + gi * scale;
            *pi -= lr * *vi;
        }
    });
}

/// Velocity-and-step variant for optimizers that apply steps through a
/// tensor interface instead of updating a flat parameter vector in place:
///
/// ```text
/// v[i]    = momentum * v[i] + gradient[i] * scale
/// step[i] = lr * v[i]
/// ```
///
/// Same determinism contract as [`sgd_momentum_step`].
///
/// # Panics
///
/// Panics if the three slices disagree in length.
pub fn sgd_momentum_velocity_step(
    velocity: &mut [f32],
    step: &mut [f32],
    gradient: &[f32],
    scale: f32,
    lr: f32,
    momentum: f32,
) {
    assert_eq!(velocity.len(), gradient.len(), "velocity/gradient length");
    assert_eq!(velocity.len(), step.len(), "velocity/step length");
    let v_base = SendPtr(velocity.as_mut_ptr());
    let s_base = SendPtr(step.as_mut_ptr());
    parallel_chunks(gradient.len(), UPDATE_CHUNK, |range| {
        let len = range.end - range.start;
        // SAFETY: disjoint in-bounds ranges from parallel_chunks.
        let (v, s) = unsafe {
            (
                std::slice::from_raw_parts_mut(v_base.get().add(range.start), len),
                std::slice::from_raw_parts_mut(s_base.get().add(range.start), len),
            )
        };
        let g = &gradient[range];
        for ((vi, si), gi) in v.iter_mut().zip(s.iter_mut()).zip(g) {
            *vi = momentum * *vi + gi * scale;
            *si = lr * *vi;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar_reference(
        params: &mut [f32],
        velocity: &mut [f32],
        gradient: &[f32],
        scale: f32,
        lr: f32,
        momentum: f32,
    ) {
        for ((p, v), g) in params.iter_mut().zip(velocity.iter_mut()).zip(gradient) {
            *v = momentum * *v + g * scale;
            *p -= lr * *v;
        }
    }

    fn synth(len: usize, salt: f32) -> Vec<f32> {
        (0..len)
            .map(|i| ((i as f32) * 0.37 + salt).sin() * 2.5)
            .collect()
    }

    #[test]
    fn matches_scalar_loop_bitwise() {
        for &len in &[
            0usize,
            1,
            7,
            UPDATE_CHUNK - 1,
            UPDATE_CHUNK,
            3 * UPDATE_CHUNK + 11,
        ] {
            let grad = synth(len, 0.1);
            let mut p_kernel = synth(len, 1.3);
            let mut v_kernel = synth(len, 2.7);
            let mut p_ref = p_kernel.clone();
            let mut v_ref = v_kernel.clone();
            sgd_momentum_step(&mut p_kernel, &mut v_kernel, &grad, 1.6, 0.05, 0.9);
            scalar_reference(&mut p_ref, &mut v_ref, &grad, 1.6, 0.05, 0.9);
            assert_eq!(bits(&p_kernel), bits(&p_ref), "params len={len}");
            assert_eq!(bits(&v_kernel), bits(&v_ref), "velocity len={len}");
        }
    }

    #[test]
    fn velocity_step_matches_in_place_form() {
        let len = 2 * UPDATE_CHUNK + 5;
        let grad = synth(len, 0.9);
        let mut p = synth(len, 4.2);
        let mut v_inplace = synth(len, 5.5);
        let mut v_split = v_inplace.clone();
        let mut step = vec![0.0f32; len];
        let mut p_split = p.clone();

        sgd_momentum_step(&mut p, &mut v_inplace, &grad, 0.25, 0.1, 0.85);
        sgd_momentum_velocity_step(&mut v_split, &mut step, &grad, 0.25, 0.1, 0.85);
        for (pi, si) in p_split.iter_mut().zip(&step) {
            *pi -= si;
        }

        assert_eq!(bits(&v_inplace), bits(&v_split));
        assert_eq!(bits(&p), bits(&p_split));
    }

    #[test]
    #[should_panic(expected = "params/gradient length")]
    fn rejects_mismatched_lengths() {
        let mut p = vec![0.0f32; 4];
        let mut v = vec![0.0f32; 4];
        sgd_momentum_step(&mut p, &mut v, &[0.0; 3], 1.0, 0.1, 0.9);
    }

    fn bits(xs: &[f32]) -> Vec<u32> {
        xs.iter().map(|x| x.to_bits()).collect()
    }
}
