//! Quickstart: build a ByzShield assignment, inspect its robustness, and
//! run a short Byzantine-robust training session.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use byzshield::prelude::*;

fn main() {
    // ── 1. Task assignment ────────────────────────────────────────────
    // The paper's Example 1 cluster: K = 15 workers, l = 5, r = 3.
    // Each batch is split into f = 25 files; each file lands on 3 workers
    // chosen by three mutually orthogonal Latin squares of degree 5.
    let assignment = MolsAssignment::new(5, 3)
        .expect("5 is a prime power and 3 < 5")
        .build();
    println!(
        "MOLS assignment: K = {}, f = {}, l = {}, r = {}",
        assignment.num_workers(),
        assignment.num_files(),
        assignment.load(),
        assignment.replication()
    );
    println!(
        "worker U0 stores files {:?}  (paper Table 2a)",
        assignment.graph().files_of(0)
    );

    // ── 2. Spectral robustness bound ──────────────────────────────────
    // Lemma 2: µ₁(AAᵀ) = 1/r. Claim 1 turns that into the upper bound γ
    // on how many file majorities ANY q Byzantine workers can corrupt.
    let mu1 = assignment.second_eigenvalue().expect("biregular graph");
    println!(
        "\nsecond eigenvalue µ₁ = {mu1:.4} (Lemma 2 predicts 1/r = {:.4})",
        1.0 / 3.0
    );
    for q in [2usize, 3, 4, 5] {
        let bound = assignment.expansion_bound(q).expect("biregular graph");
        let exact = cmax_exhaustive(&assignment, q);
        println!(
            "q = {q}: c_max = {:2}  ε̂ = {:.2}  (γ bound {:5.2};  baseline ε̂ = {:.2}, FRC ε̂ = {:.2})",
            exact.value,
            exact.value as f64 / 25.0,
            bound.gamma(),
            baseline_epsilon(q, 15),
            frc_epsilon(q, 3, 15),
        );
    }

    // ── 3. Robust training under attack ───────────────────────────────
    // Train a small MLP on the synthetic image task while an omniscient
    // adversary controls q = 3 workers and mounts the ALIE attack.
    println!("\ntraining with q = 3 omniscient ALIE attackers (ByzShield defense)...");
    let spec = ExperimentSpec {
        iterations: 120,
        eval_every: 30,
        ..ExperimentSpec::new(
            SchemeSpec::ByzShield,
            AggregatorKind::Median,
            ClusterSize::K15,
            AttackKind::Alie,
            3,
        )
    };
    let curve = experiments::run_experiment(&spec);
    for p in &curve.points {
        println!(
            "  iter {:4}: top-1 accuracy {:5.1}%",
            p.iteration,
            100.0 * p.accuracy
        );
    }
    println!(
        "mean observed distortion fraction ε̂ = {:.3} (theory: 3/25 = 0.12)",
        curve.mean_epsilon_hat
    );
}
