//! Omniscient-attack analysis: how much damage can the strongest possible
//! adversary do against each placement scheme?
//!
//! Sweeps q for ByzShield (MOLS and Ramanujan), DETOX/DRACO's FRC and a
//! random placement, reporting the exact worst-case distorted fraction ε̂
//! and the spectral bound γ/f — the comparison behind the paper's
//! Section 5.3 and its "over 36% reduction on average" headline.
//!
//! ```sh
//! cargo run --release --example omniscient_attack_analysis
//! ```

use byzshield::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mols = MolsAssignment::new(5, 3).expect("valid parameters").build();
    let ram = RamanujanAssignment::new(3, 5)
        .expect("valid parameters")
        .build();
    let mut rng = StdRng::seed_from_u64(42);
    let random = RandomAssignment::new(15, 25, 3)
        .expect("valid parameters")
        .build(&mut rng);

    println!("K = 15 workers, f = 25 files, r = 3 replicas — worst-case distortion ε̂ by q\n");
    println!(
        "{:>3} | {:>9} {:>11} {:>8} | {:>8} {:>8} | {:>6}",
        "q", "ByzShield", "Ramanujan-1", "Random", "Baseline", "FRC", "γ/f"
    );
    println!("{}", "-".repeat(72));
    let mut ratio_sum = 0.0;
    for q in 2..=7 {
        let c_mols = cmax_auto(&mols, q);
        let c_ram = cmax_auto(&ram, q);
        let c_rand = cmax_auto(&random, q);
        let gamma = mols.expansion_bound(q).expect("biregular").gamma();
        let e_mols = c_mols.value as f64 / 25.0;
        let e_frc = frc_epsilon(q, 3, 15);
        ratio_sum += e_mols / e_frc;
        println!(
            "{:>3} | {:>9.2} {:>11.2} {:>8.2} | {:>8.2} {:>8.2} | {:>6.2}",
            q,
            e_mols,
            c_ram.value as f64 / 25.0,
            c_rand.value as f64 / 25.0,
            baseline_epsilon(q, 15),
            e_frc,
            gamma / 25.0,
        );
    }
    println!(
        "\naverage ε̂_ByzShield / ε̂_FRC = {:.2} (paper reports 0.64 for this table)",
        ratio_sum / 6.0
    );

    // The witness sets themselves: WHO should the adversary corrupt?
    println!("\noptimal Byzantine sets against the MOLS placement:");
    for q in [3usize, 5] {
        let res = cmax_exhaustive(&mols, q);
        println!(
            "  q = {q}: corrupt workers {:?} → {} distorted files",
            res.witness, res.value
        );
    }

    // Against FRC the optimal attack is transparent: fill whole groups.
    let frc = FrcAssignment::new(15, 3).expect("valid parameters").build();
    let res = cmax_exhaustive(&frc, 4);
    println!(
        "  (FRC, q = 4: workers {:?} already kill {} of 5 vote groups)",
        res.witness, res.value
    );
}
