//! Run the FULL protocol over a real multi-threaded message-passing
//! cluster: one OS thread per worker, every model broadcast and gradient
//! return serialized into checksummed binary frames — no shared memory
//! between the parameter server and the workers.
//!
//! ```sh
//! cargo run --release --example message_passing_cluster
//! ```

use byz_nn::FastMlp;
use byzshield::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn main() {
    // Dataset shared read-only across worker threads.
    let (train, test) = SyntheticImages::new(SyntheticConfig {
        num_classes: 5,
        channels: 1,
        hw: 8,
        train_samples: 1_500,
        test_samples: 400,
        noise: 0.6,
        max_shift: 1,
        seed: 77,
    })
    .generate();
    let train = Arc::new(train);

    // ByzShield placement: MOLS (l = 5, r = 3) on K = 15 worker threads.
    let assignment = MolsAssignment::new(5, 3).expect("valid parameters").build();
    let dims = vec![train.sample_len(), 32, 5];
    let cluster = MessagePassingCluster::new(assignment, Arc::clone(&train), dims.clone());

    // q = 4 Byzantine threads mounting the constant attack; by Table 3
    // they can corrupt at most 5 of the 25 file majorities.
    let config = ServerConfig {
        batch_size: 250,
        iterations: 120,
        byzantine: vec![0, 5, 10, 11],
        attack: LocalAttack::Constant { value: -100.0 },
        seed: 9,
        ..ServerConfig::default()
    };

    let init = FastMlp::new(&dims, &mut StdRng::seed_from_u64(3)).params_flat();
    println!(
        "training on 15 worker threads, {} Byzantine, all traffic framed + checksummed...",
        config.byzantine.len()
    );
    let (params, summaries) = cluster.train(init, &config);

    let total_bytes: usize = summaries.iter().map(|s| s.bytes_received).sum();
    let total_frames: usize = summaries.iter().map(|s| s.frames_received).sum();
    println!(
        "PS ingested {total_frames} gradient frames / {:.1} MiB over {} iterations",
        total_bytes as f64 / (1024.0 * 1024.0),
        summaries.len()
    );

    // Per-phase wall time, as recorded on every RoundSummary.
    let phase_report = |label: &str, summaries: &[RoundSummary]| {
        let n = summaries.len().max(1) as u64;
        let mean = |f: fn(&PhaseTimings) -> u64| {
            summaries.iter().map(|s| f(&s.timings)).sum::<u64>() / n / 1_000
        };
        let overlap = summaries
            .iter()
            .map(|s| s.timings.overlap_ratio())
            .sum::<f64>()
            / n as f64;
        println!(
            "{label:<9} compute {:>6} µs | wire {:>6} µs | vote {:>6} µs | update {:>6} µs | round {:>6} µs | overlap {overlap:.2}",
            mean(|t| t.compute_ns),
            mean(|t| t.wire_ns),
            mean(|t| t.vote_ns),
            mean(|t| t.update_ns),
            mean(|t| t.round_ns),
        );
        overlap
    };
    let barrier_overlap = phase_report("barrier", &summaries);

    // The same run in streaming mode: the PS votes each file the moment
    // its last replica lands instead of waiting for the whole window, so
    // vote time hides inside the wire phase and the overlap ratio rises —
    // with bit-identical parameters (the canonical-fold guarantee).
    let streaming_config = ServerConfig {
        mode: RoundMode::Streaming,
        ..config.clone()
    };
    let init_streaming = FastMlp::new(&dims, &mut StdRng::seed_from_u64(3)).params_flat();
    let (streaming_params, streaming_summaries) = cluster.train(init_streaming, &streaming_config);
    let streaming_overlap = phase_report("streaming", &streaming_summaries);
    println!(
        "streaming == barrier parameters: {}, overlap {:.2} vs {:.2}",
        streaming_params == params,
        streaming_overlap,
        barrier_overlap,
    );

    // Evaluate the trained parameters.
    let mut model = FastMlp::new(&dims, &mut StdRng::seed_from_u64(0));
    model.set_params(&params);
    let n = test.len();
    let mut x = Vec::with_capacity(n * test.sample_len());
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        x.extend_from_slice(test.sample(i));
        labels.push(test.label(i));
    }
    let preds = model.predict(&x, n);
    let correct = preds.iter().zip(&labels).filter(|(p, l)| p == l).count();
    println!(
        "top-1 test accuracy under attack: {:.1}% (chance = 20%)",
        100.0 * correct as f64 / n as f64
    );

    // Same run over the vote-on-hash transport: byte-identical model,
    // a fraction of the traffic.
    let hash_config = ServerConfig {
        transport: byzshield::prelude::Transport::HashVote,
        ..config
    };
    let init = FastMlp::new(&dims, &mut StdRng::seed_from_u64(3)).params_flat();
    let (hash_params, hash_summaries) = MessagePassingCluster::new(
        MolsAssignment::new(5, 3).expect("valid").build(),
        Arc::clone(&train),
        dims,
    )
    .train(init, &hash_config);
    let hash_bytes: usize = hash_summaries.iter().map(|s| s.bytes_received).sum();
    println!(
        "vote-on-hash transport: identical parameters = {}, PS ingress {:.1} MiB (vs {:.1})",
        hash_params == params,
        hash_bytes as f64 / (1024.0 * 1024.0),
        total_bytes as f64 / (1024.0 * 1024.0),
    );

    // Bonus: the signSGD wire format — 32× smaller gradient frames.
    let g: Vec<f32> = (0..10_000).map(|i| (i as f32).sin()).collect();
    let packed = PackedSigns::pack(&g);
    println!(
        "signSGD sign-packing: {} floats → {} bytes on the wire ({}x compression)",
        g.len(),
        packed.wire_len(),
        (g.len() * 4) / packed.wire_len()
    );
}
