//! Quick driver: degraded-quorum training under crash + drop faults.
use byzshield::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let (train, test) = SyntheticImages::new(SyntheticConfig {
        num_classes: 5,
        channels: 1,
        hw: 8,
        train_samples: 800,
        test_samples: 200,
        noise: 0.5,
        max_shift: 1,
        seed: 2024,
    })
    .generate();
    let mut rng = StdRng::seed_from_u64(5);
    let model = Mlp::new(&[64, 32, 5], &mut rng);
    let cfg = TrainingConfig {
        batch_size: 100,
        iterations: 20,
        eval_every: 5,
        eval_samples: 200,
        lr_schedule: StepDecaySchedule::new(0.05, 0.96, 30),
        num_byzantine: 2,
        seed: 77,
        faults: FaultPlan::new(0xC0FFEE).crash(10).drop_rate(0.10),
        ..TrainingConfig::default()
    };
    let history = Trainer::new(
        &model,
        &train,
        &test,
        MolsAssignment::new(5, 3).unwrap().build(),
        InputLayout::Flat,
        ByzantineSelector::Fixed(vec![0, 5]),
        Box::new(Alie::default()),
        Defense::VoteThenAggregate(Box::new(CoordinateMedian)),
        cfg,
    )
    .run()
    .expect("train survives faults");
    let last = history.records.last().unwrap();
    println!("final round outcome: {:?}", last.outcome);
    println!("epsilon_hat (over survivors): {:.3}", last.epsilon_hat);
    println!(
        "final loss {:.4}, final accuracy {:.1}%",
        history.final_loss,
        100.0 * history.final_accuracy
    );
    println!(
        "degraded files total: {}, abandoned: {}",
        history.total_degraded(),
        history.total_abandoned()
    );
}
