//! Robust training walkthrough: wire a `Trainer` by hand (custom model,
//! dataset, attack and defense) instead of using the preconfigured
//! experiment drivers.
//!
//! ```sh
//! cargo run --release --example robust_training
//! ```

use byzshield::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Data: 10-class synthetic images, 1×12×12.
    let (train, test) = SyntheticImages::new(SyntheticConfig {
        num_classes: 10,
        channels: 1,
        hw: 12,
        train_samples: 3_000,
        test_samples: 600,
        noise: 0.8,
        max_shift: 2,
        seed: 99,
    })
    .generate();

    // Model: an MLP over flattened pixels.
    let mut rng = StdRng::seed_from_u64(7);
    let model = Mlp::new(&[144, 64, 10], &mut rng);
    println!("model parameters: {}", num_params(&model.parameters()));

    // Placement: the paper's K = 25 cluster (Ramanujan Case 2, r = l = 5).
    let assignment = RamanujanAssignment::new(5, 5)
        .expect("valid parameters")
        .build();

    // Adversary: q = 5 workers, chosen omnisciently, mounting the
    // constant attack.
    let q = 5;
    let selector = ByzantineSelector::Omniscient;
    let attack = Box::new(ConstantAttack { value: -100.0 });

    // Defense: ByzShield = majority vote per file, then coordinate-wise
    // median across the 25 vote winners.
    let defense = Defense::VoteThenAggregate(Box::new(CoordinateMedian));

    let config = TrainingConfig {
        batch_size: 300,
        iterations: 150,
        lr_schedule: StepDecaySchedule::new(0.05, 0.96, 30),
        momentum: 0.9,
        num_byzantine: q,
        eval_every: 25,
        eval_samples: 600,
        seed: 1234,
        ..TrainingConfig::default()
    };

    let mut trainer = Trainer::new(
        &model,
        &train,
        &test,
        assignment,
        InputLayout::Flat,
        selector,
        attack,
        defense,
        config,
    );

    let history = trainer
        .run()
        .expect("defense applicable for these parameters");
    println!("\niter  ε̂     top-1 accuracy");
    for r in &history.records {
        if let Some(acc) = r.test_accuracy {
            println!(
                "{:4}  {:.2}   {:5.1}%",
                r.iteration,
                r.epsilon_hat,
                100.0 * acc
            );
        }
    }
    println!(
        "\nfinal accuracy {:.1}% | mean ε̂ = {:.3} | total time {:.1?}",
        100.0 * history.final_accuracy,
        history.mean_epsilon_hat(),
        history.total_time
    );

    // Contrast: the same adversary against plain averaging diverges or
    // stalls — run it and see.
    let mut rng = StdRng::seed_from_u64(7);
    let naive_model = Mlp::new(&[144, 64, 10], &mut rng);
    let naive = Trainer::new(
        &naive_model,
        &train,
        &test,
        FrcAssignment::new(25, 1).expect("valid parameters").build(),
        InputLayout::Flat,
        ByzantineSelector::Omniscient,
        Box::new(ConstantAttack { value: -100.0 }),
        Defense::Direct(Box::new(Mean)),
        TrainingConfig {
            batch_size: 300,
            iterations: 150,
            lr_schedule: StepDecaySchedule::new(0.05, 0.96, 30),
            momentum: 0.9,
            num_byzantine: q,
            eval_every: 0,
            eval_samples: 600,
            seed: 1234,
            ..TrainingConfig::default()
        },
    )
    .run()
    .expect("mean is always applicable");
    println!(
        "same attack vs plain mean aggregation: final accuracy {:.1}%",
        100.0 * naive.final_accuracy
    );
}
