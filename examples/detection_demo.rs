//! Detection demo: a K = 15 MOLS cluster with 3 ALIE workers, watched by
//! the vote-audit reputation ledger. Every round prints the worst active
//! suspicion and the measured distortion ε̂; the liars are quarantined
//! mid-training and ε̂ collapses to zero for the rest of the run.
use byzshield::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let (train, test) = SyntheticImages::new(SyntheticConfig {
        num_classes: 5,
        channels: 1,
        hw: 8,
        train_samples: 800,
        test_samples: 200,
        noise: 0.5,
        max_shift: 1,
        seed: 2024,
    })
    .generate();
    let mut rng = StdRng::seed_from_u64(5);
    let model = Mlp::new(&[64, 32, 5], &mut rng);
    let byzantine = vec![0usize, 5, 10];
    let cfg = TrainingConfig {
        batch_size: 100,
        iterations: 25,
        eval_every: 5,
        eval_samples: 200,
        lr_schedule: StepDecaySchedule::new(0.05, 0.96, 30),
        num_byzantine: byzantine.len(),
        seed: 77,
        reputation: Some(ReputationConfig::default()),
        ..TrainingConfig::default()
    };
    println!(
        "MOLS(5,3): K = 15 workers, f = 25 files, r = 3; ALIE on {byzantine:?}; \
         quarantine threshold {:.2}, min evidence {}",
        ReputationConfig::default().quarantine_threshold,
        ReputationConfig::default().min_evidence,
    );
    let history = Trainer::new(
        &model,
        &train,
        &test,
        MolsAssignment::new(5, 3).unwrap().build(),
        InputLayout::Flat,
        ByzantineSelector::Fixed(byzantine.clone()),
        Box::new(Alie::default()),
        Defense::VoteThenAggregate(Box::new(CoordinateMedian)),
        cfg,
    )
    .run()
    .expect("training completes");

    println!("round  max-active-suspicion  eps_hat  quarantined");
    for rec in &history.records {
        let rep = rec.reputation.as_ref().expect("reputation enabled");
        let max_active = rep
            .suspicions
            .iter()
            .enumerate()
            .filter(|(w, _)| !rep.quarantined.contains(w))
            .map(|(_, s)| *s)
            .fold(0.0f64, f64::max);
        println!(
            "{:>5}  {:>20.3}  {:>7.3}  {:?}",
            rec.iteration, max_active, rec.epsilon_hat, rep.quarantined
        );
        for event in &rep.events {
            println!("       >> {event:?}");
        }
    }

    let timeline = history.quarantine_timeline();
    println!("\nquarantine timeline (worker, round): {timeline:?}");
    assert_eq!(
        history.ledger.as_ref().unwrap().quarantined_workers(),
        byzantine,
        "exactly the ALIE workers are quarantined"
    );
    let post: Vec<f64> = history
        .records
        .iter()
        .filter(|r| {
            timeline
                .iter()
                .all(|&(_, round)| (r.iteration as u64) > round)
        })
        .map(|r| r.epsilon_hat)
        .collect();
    println!(
        "post-quarantine eps_hat over {} rounds: max {:.3}",
        post.len(),
        post.iter().copied().fold(0.0, f64::max)
    );
    println!(
        "final loss {:.4}, final accuracy {:.1}%",
        history.final_loss,
        100.0 * history.final_accuracy
    );
}
