//! Detection-latency sweep: how many rounds the reputation ledger takes
//! to quarantine each attack variant (regenerates
//! `bench_results/detection_latency.txt`).
use byzshield::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run(attack: Box<dyn AttackVector>, byz: Vec<usize>, faults: FaultPlan) -> TrainingHistory {
    let (train, test) = SyntheticImages::new(SyntheticConfig {
        num_classes: 5,
        channels: 1,
        hw: 8,
        train_samples: 800,
        test_samples: 200,
        noise: 0.5,
        max_shift: 1,
        seed: 2024,
    })
    .generate();
    let mut rng = StdRng::seed_from_u64(5);
    let model = Mlp::new(&[64, 32, 5], &mut rng);
    let cfg = TrainingConfig {
        batch_size: 100,
        iterations: 60,
        eval_every: 0,
        eval_samples: 100,
        lr_schedule: StepDecaySchedule::new(0.05, 0.96, 30),
        num_byzantine: byz.len(),
        seed: 77,
        faults,
        reputation: Some(ReputationConfig::default()),
        ..TrainingConfig::default()
    };
    Trainer::new(
        &model,
        &train,
        &test,
        MolsAssignment::new(5, 3).unwrap().build(),
        InputLayout::Flat,
        ByzantineSelector::Fixed(byz),
        attack,
        Defense::VoteThenAggregate(Box::new(CoordinateMedian)),
        cfg,
    )
    .run()
    .expect("completes")
}

fn report(name: &str, history: &TrainingHistory, byz: &[usize]) {
    let timeline = history.quarantine_timeline();
    let all_caught = {
        let mut w: Vec<usize> = timeline.iter().map(|&(w, _)| w).collect();
        w.sort_unstable();
        w == byz
    };
    let last = timeline.iter().map(|&(_, r)| r).max().unwrap_or(0);
    let post_eps = history
        .records
        .iter()
        .filter(|r| r.iteration as u64 > last)
        .map(|r| r.epsilon_hat)
        .fold(0.0f64, f64::max);
    let pre_eps = history
        .records
        .iter()
        .filter(|r| r.iteration as u64 <= last)
        .map(|r| r.epsilon_hat)
        .fold(0.0f64, f64::max);
    println!(
        "{name:<34} q={} caught={} rounds_to_full_quarantine={} peak_eps_before={:.3} max_eps_after={:.3}",
        byz.len(),
        all_caught,
        last,
        pre_eps,
        post_eps
    );
}

type Case = (&'static str, Box<dyn AttackVector>, Vec<usize>, FaultPlan);

fn main() {
    let cases: Vec<Case> = vec![
        (
            "alie_q3",
            Box::new(Alie::default()),
            vec![0, 5, 10],
            FaultPlan::none(),
        ),
        (
            "alie_q2",
            Box::new(Alie::default()),
            vec![0, 5],
            FaultPlan::none(),
        ),
        (
            "constant_q3",
            Box::new(ConstantAttack::default()),
            vec![0, 5, 10],
            FaultPlan::none(),
        ),
        (
            "revgrad_q3",
            Box::new(ReversedGradient::default()),
            vec![0, 5, 10],
            FaultPlan::none(),
        ),
        (
            "sleeper80_alie_q2",
            Box::new(Sleeper {
                inner: Alie::default(),
                fraction: 0.8,
                seed: 9,
            }),
            vec![0, 5],
            FaultPlan::none(),
        ),
        (
            "sleeper60_alie_q2",
            Box::new(Sleeper {
                inner: Alie::default(),
                fraction: 0.6,
                seed: 9,
            }),
            vec![0, 5],
            FaultPlan::none(),
        ),
        (
            "alie_q2_crash_drop",
            Box::new(Alie::default()),
            vec![0, 5],
            FaultPlan::new(6).crash(4).drop_rate(0.05),
        ),
    ];
    for (name, attack, byz, faults) in cases {
        let history = run(attack, byz.clone(), faults);
        report(name, &history, &byz);
    }
}
