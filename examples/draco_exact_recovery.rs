//! DRACO vs ByzShield: exact recovery vs bounded distortion.
//!
//! DRACO (Chen et al. 2018) recovers the batch gradient EXACTLY — but only
//! with replication `r ≥ 2q + 1`, the information-theoretic minimum.
//! ByzShield accepts a small bounded distortion in exchange for a far
//! smaller replication factor. This example makes the trade concrete.
//!
//! ```sh
//! cargo run --release --example draco_exact_recovery
//! ```

use byzshield::prelude::*;

fn main() {
    let k = 15usize;
    let d = 4usize;
    // Per-file "gradients" (synthetic, easy to eyeball).
    let files: Vec<Vec<f32>> = (0..k)
        .map(|i| (0..d).map(|j| (i * d + j) as f32 * 0.1).collect())
        .collect();
    let true_sum: Vec<f32> = (0..d).map(|j| files.iter().map(|g| g[j]).sum()).collect();

    // ── DRACO cyclic code, q = 2 (needs r = 5) ────────────────────────
    let code = CyclicCode::new(k, 2).expect("2q+1 = 5 ≤ 15");
    println!(
        "DRACO cyclic code: K = {k}, q = 2 → replication r = {} (files per worker)",
        code.replication()
    );
    let mut returns = code.encode(&files).expect("well-formed input");
    // Two omniscient adversaries send garbage.
    returns[4] = vec![3.3e7; 2 * d];
    returns[12] = vec![-1.1e6; 2 * d];
    let decoded = code.decode_sum(&returns).expect("within the code radius");
    let max_err = decoded
        .iter()
        .zip(&true_sum)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    println!("  2 corrupted returns → decoded sum max error = {max_err:.2e} (EXACT recovery)");

    // Three adversaries exceed the radius: the decoder fails loudly.
    returns[7] = vec![9.9e8; 2 * d];
    match code.decode_sum(&returns) {
        Err(DracoError::DecodingFailed) => {
            println!("  3 corrupted returns → DecodingFailed (radius q = 2 exceeded)")
        }
        other => println!("  unexpected: {other:?}"),
    }

    // ── The regime comparison the paper makes (Section 5.3.1) ─────────
    println!("\nTolerating q = 5 Byzantines on K = 15 workers:");
    println!("  DRACO needs r ≥ 2·5 + 1 = 11 → load 11 files/worker (≈3.7× ByzShield's)");
    let byzshield = MolsAssignment::new(5, 3).expect("valid").build();
    let res = cmax_auto(&byzshield, 5);
    println!(
        "  ByzShield with r = 3 bounds the damage instead: ε̂ = {:.2} (c_max = {} of {} files)",
        res.epsilon_hat(byzshield.num_files()),
        res.value,
        byzshield.num_files()
    );

    // ── FRC flavor of DRACO ───────────────────────────────────────────
    let frc = FrcCode::new(15, 5).expect("5 | 15");
    let groups: Vec<Vec<f32>> = (0..frc.num_groups())
        .map(|g| vec![g as f32 + 1.0; d])
        .collect();
    let mut frc_returns = frc.encode(&groups).expect("well-formed input");
    frc_returns[0] = vec![f32::NAN; d];
    frc_returns[1] = vec![f32::NAN; d];
    let sum = frc.decode(&frc_returns, 2).expect("q = 2 ≤ (r−1)/2");
    println!(
        "\nFRC-DRACO (K = 15, r = 5): 2 NaN-bombing colluders in one group → decoded sum {:?} (exact)",
        sum
    );
}
