//! Scheme comparison: ByzShield vs DETOX vs baseline median under the same
//! omniscient ALIE attack — a miniature of the paper's Figure 2.
//!
//! ```sh
//! cargo run --release --example scheme_comparison
//! ```

use byzshield::prelude::*;

fn main() {
    let q = 5;
    let iterations = 150;
    println!("K = 25, omniscient ALIE attack, q = {q}, {iterations} iterations\n");

    let specs = [
        ExperimentSpec {
            iterations,
            eval_every: 30,
            ..ExperimentSpec::new(
                SchemeSpec::ByzShield,
                AggregatorKind::Median,
                ClusterSize::K25,
                AttackKind::Alie,
                q,
            )
        },
        ExperimentSpec {
            iterations,
            eval_every: 30,
            ..ExperimentSpec::new(
                SchemeSpec::Detox,
                AggregatorKind::MedianOfMeans,
                ClusterSize::K25,
                AttackKind::Alie,
                q,
            )
        },
        ExperimentSpec {
            iterations,
            eval_every: 30,
            ..ExperimentSpec::new(
                SchemeSpec::Baseline,
                AggregatorKind::Median,
                ClusterSize::K25,
                AttackKind::Alie,
                q,
            )
        },
    ];

    let mut curves = Vec::new();
    for spec in &specs {
        let curve = experiments::run_experiment(spec);
        println!(
            "{:<22} mean ε̂ = {:.2}  final accuracy = {:5.1}%",
            curve.label,
            curve.mean_epsilon_hat,
            curve.points.last().map_or(f64::NAN, |p| 100.0 * p.accuracy)
        );
        curves.push(curve);
    }

    println!("\naccuracy vs iteration:");
    print!("{:>6}", "iter");
    for c in &curves {
        print!(" | {:>20}", c.label);
    }
    println!();
    let checkpoints: Vec<usize> = curves[0].points.iter().map(|p| p.iteration).collect();
    for (row, iter) in checkpoints.iter().enumerate() {
        print!("{iter:>6}");
        for c in &curves {
            match c.points.get(row) {
                Some(p) => print!(" | {:>19.1}%", 100.0 * p.accuracy),
                None => print!(" | {:>20}", "n/a"),
            }
        }
        println!();
    }
    println!(
        "\nByzShield keeps ε̂ at {:.2} where DETOX's grouped votes lose {:.2} \
         of the batch to the same adversary — the accuracy gap follows.",
        curves[0].mean_epsilon_hat, curves[1].mean_epsilon_hat
    );
}
