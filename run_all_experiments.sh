#!/bin/bash
# Regenerates every table and figure of the paper (DESIGN.md §5).
cd "$(dirname "$0")"
mkdir -p bench_results
for t in table1_mols table2_allocation table3_distortion table4_distortion table6_distortion; do
  echo "=== $t ==="
  cargo run --release -q -p byz-bench --bin $t 2>&1 | tee bench_results/$t.txt
done
echo "=== table5_distortion (longest: exact B&B to q = 13) ==="
cargo run --release -q -p byz-bench --bin table5_distortion 2>&1 | tee bench_results/table5_distortion.txt
for f in fig2_alie_median fig3_alie_bulyan fig4_alie_multikrum fig5_constant_signsgd \
         fig6_revgrad_median fig7_revgrad_bulyan fig8_revgrad_multikrum \
         fig9_alie_median_k15 fig10_alie_bulyan_k15 fig11_alie_multikrum_k15 \
         fig12_iteration_time ablation_assignment ablation_aggregation \
         ablation_attacker_knowledge ablation_redundancy; do
  echo "=== $f ==="
  cargo run --release -q -p byz-bench --bin $f 2>&1 | tee bench_results/$f.txt
done
echo ALL_EXPERIMENTS_DONE
